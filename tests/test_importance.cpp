#include "core/explanation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Label depends strongly on feature 0, weakly on feature 1, never on 2/3.
Dataset structured_data(std::size_t n, std::uint64_t seed) {
  Dataset d(4);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double score = 2.0 * x[0] + 0.4 * x[1] + 0.3 * rng.normal();
    d.append_row(x, score > 1.2 ? 1 : 0, 0);
  }
  return d;
}

TEST(MeanAbsShap, RanksFeaturesByTrueInfluence) {
  const Dataset train = structured_data(1500, 1);
  RandomForestOptions options;
  options.n_trees = 40;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(300, 2);
  const auto importance = mean_abs_shap(explainer, probe, 150);
  ASSERT_EQ(importance.size(), 4u);
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[1], importance[2]);
  EXPECT_GT(importance[1], importance[3]);
  for (const double v : importance) EXPECT_GE(v, 0.0);
}

TEST(MeanAbsShap, UsesAllRowsWhenFewerThanCap) {
  const Dataset train = structured_data(400, 3);
  RandomForestOptions options;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(50, 4);
  // Deterministic regardless of seed when all rows are used.
  const auto a = mean_abs_shap(explainer, probe, 100, 1);
  const auto b = mean_abs_shap(explainer, probe, 100, 2);
  for (std::size_t f = 0; f < 4; ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(MeanAbsShap, SubsamplingIsSeedDeterministic) {
  const Dataset train = structured_data(400, 5);
  RandomForestOptions options;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(300, 6);
  const auto a = mean_abs_shap(explainer, probe, 40, 9);
  const auto b = mean_abs_shap(explainer, probe, 40, 9);
  for (std::size_t f = 0; f < 4; ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(MeanAbsShap, EmptyDatasetThrows) {
  const Dataset train = structured_data(200, 7);
  RandomForestOptions options;
  options.n_trees = 5;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  Dataset empty(4);
  EXPECT_THROW(mean_abs_shap(explainer, empty), std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
