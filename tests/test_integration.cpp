// End-to-end integration: the complete Fig. 1 workflow on tiny instances —
// data acquisition, design-held-out training, metric evaluation, and SHAP
// explanation — all in one pass.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/rusboost.hpp"
#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "features/labeler.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace drcshap {
namespace {

PipelineOptions tiny_options() {
  PipelineOptions options;
  options.generator.scale = 16.0;
  return options;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Built once for the whole suite: three small designs.
    train_ = new Dataset(FeatureSchema::kNumFeatures, FeatureSchema::names());
    for (const char* name : {"fft_2", "fft_1"}) {
      train_->append(run_pipeline(suite_spec(name), tiny_options()).samples);
    }
    test_ = new DesignRun(run_pipeline(suite_spec("bridge32_a"), tiny_options()));
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    train_ = nullptr;
    test_ = nullptr;
  }

  static Dataset* train_;
  static DesignRun* test_;
};

Dataset* IntegrationFixture::train_ = nullptr;
DesignRun* IntegrationFixture::test_ = nullptr;

TEST_F(IntegrationFixture, DataHasBothClassesAndRarePositives) {
  ASSERT_GT(train_->n_rows(), 200u);
  EXPECT_GT(train_->n_positives(), 3u);
  // Rare positives, as in the paper's Table I.
  EXPECT_LT(train_->n_positives(), train_->n_rows() / 4);
}

TEST_F(IntegrationFixture, ForestBeatsChanceOnHeldOutDesign) {
  RandomForestOptions options;
  options.n_trees = 60;
  RandomForestClassifier forest(options);
  forest.fit(*train_);
  const auto scores = forest.predict_proba_all(test_->samples);
  const double chance = static_cast<double>(test_->samples.n_positives()) /
                        static_cast<double>(test_->samples.n_rows());
  if (test_->samples.n_positives() > 0) {
    EXPECT_GT(auprc(scores, test_->samples.labels()), chance);
    EXPECT_GT(auroc(scores, test_->samples.labels()), 0.6);
  }
}

TEST_F(IntegrationFixture, ExplanationAdditivityOnRealFeatures) {
  RandomForestOptions options;
  options.n_trees = 25;
  RandomForestClassifier forest(options);
  forest.fit(*train_);
  const TreeShapExplainer explainer(forest);
  for (const std::size_t i : {0u, 7u, 42u}) {
    const Explanation e = explain_sample(
        explainer, forest, test_->samples.row(i), FeatureSchema::names());
    EXPECT_LT(e.additivity_gap(), 1e-9);
    EXPECT_EQ(e.shap_values().size(), 387u);
  }
}

TEST_F(IntegrationFixture, ExplanationNamesUsePaperConvention) {
  RandomForestOptions options;
  options.n_trees = 25;
  RandomForestClassifier forest(options);
  forest.fit(*train_);
  const TreeShapExplainer explainer(forest);
  const Explanation e = explain_sample(
      explainer, forest, test_->samples.row(0), FeatureSchema::names());
  const std::string text = e.to_text(5);
  EXPECT_FALSE(text.empty());
  // All names come from the schema.
  for (const FeatureContribution& c : e.top(5)) {
    EXPECT_NO_THROW(FeatureSchema::index_of(c.feature_name));
  }
}

TEST_F(IntegrationFixture, ScaledFeaturesWorkWithBaselines) {
  Dataset train_copy = *train_;
  Dataset test_copy = test_->samples;
  StandardScaler scaler;
  scaler.fit_transform(train_copy);
  scaler.transform(test_copy);
  RusBoostOptions options;
  options.n_rounds = 10;
  RusBoostClassifier model(options);
  model.fit(train_copy);
  const auto scores = model.predict_proba_all(test_copy);
  EXPECT_EQ(scores.size(), test_copy.n_rows());
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(IntegrationFixture, HotspotLabelsConsistentWithViolations) {
  const auto labels =
      hotspot_labels(test_->design.grid(), test_->drc.violations);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], test_->samples.label(i) ? 1 : 0);
  }
}

TEST_F(IntegrationFixture, PipelineIsReproducible) {
  const DesignRun again = run_pipeline(suite_spec("bridge32_a"), tiny_options());
  ASSERT_EQ(again.samples.n_rows(), test_->samples.n_rows());
  EXPECT_EQ(again.samples.labels(), test_->samples.labels());
  for (const std::size_t i : {0u, 13u, 99u}) {
    for (std::size_t f = 0; f < 387u; ++f) {
      EXPECT_FLOAT_EQ(again.samples.row(i)[f], test_->samples.row(i)[f]);
    }
  }
}

}  // namespace
}  // namespace drcshap
