// Kernel SHAP is a sampling approximation; these tests check its structural
// guarantees (additivity by construction, determinism) and that on simple
// models with independent features it converges toward the exact values the
// tree explainer computes.

#include "core/kernel_shap.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/tree_shap.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset uniform_data(std::size_t n, std::size_t n_features,
                     std::uint64_t seed) {
  Dataset d(n_features);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(n_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const int label = (x[0] > 0.5f) == (x[1] > 0.5f) ? 0 : 1;
    d.append_row(x, label, 0);
  }
  return d;
}

RandomForestClassifier fit_forest(const Dataset& d, int n_trees = 25) {
  RandomForestOptions options;
  options.n_trees = n_trees;
  RandomForestClassifier forest(options);
  forest.fit(d);
  return forest;
}

TEST(KernelShap, AdditivityIsExactByConstruction) {
  const Dataset d = uniform_data(400, 5, 1);
  const RandomForestClassifier forest = fit_forest(d);
  const KernelShapExplainer explainer(forest, d);
  for (const std::size_t i : {0u, 10u, 20u}) {
    const auto phi = explainer.shap_values(d.row(i));
    const double total =
        std::accumulate(phi.begin(), phi.end(), explainer.base_value());
    EXPECT_NEAR(total, forest.predict_proba(d.row(i)), 1e-9);
  }
}

TEST(KernelShap, DeterministicForSeed) {
  const Dataset d = uniform_data(300, 4, 2);
  const RandomForestClassifier forest = fit_forest(d);
  const KernelShapExplainer a(forest, d), b(forest, d);
  const auto pa = a.shap_values(d.row(3));
  const auto pb = b.shap_values(d.row(3));
  for (std::size_t f = 0; f < pa.size(); ++f) {
    EXPECT_DOUBLE_EQ(pa[f], pb[f]);
  }
}

TEST(KernelShap, ApproximatesTreeShapOnIndependentFeatures) {
  // With uniform independent features, the tree conditioning and the
  // interventional imputation agree in expectation, so Kernel SHAP should
  // approach TreeSHAP's exact values.
  const Dataset d = uniform_data(1200, 4, 3);
  const RandomForestClassifier forest = fit_forest(d, 30);
  const TreeShapExplainer exact(forest);
  KernelShapOptions options;
  options.n_coalitions = 4000;
  options.n_background = 60;
  const KernelShapExplainer approx(forest, d, options);

  Rng rng(4);
  double total_err = 0.0, total_mag = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const auto phi_exact = exact.shap_values(x);
    const auto phi_approx = approx.shap_values(x);
    for (std::size_t f = 0; f < 4; ++f) {
      total_err += std::abs(phi_exact[f] - phi_approx[f]);
      total_mag += std::abs(phi_exact[f]);
    }
  }
  // Sampling + background noise allow moderate error, but the approximation
  // must track the exact values (relative L1 error under ~40%).
  EXPECT_LT(total_err, 0.4 * total_mag + 0.05);
}

TEST(KernelShap, DummyFeatureNearZero) {
  // Feature 3 never matters; its Kernel SHAP value should be ~0.
  Dataset d(4);
  Rng rng(5);
  for (int i = 0; i < 800; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    d.append_row(x, x[0] > 0.5f ? 1 : 0, 0);
  }
  const RandomForestClassifier forest = fit_forest(d, 20);
  KernelShapOptions options;
  options.n_coalitions = 3000;
  const KernelShapExplainer explainer(forest, d, options);
  const std::vector<float> x{0.9f, 0.5f, 0.5f, 0.5f};
  const auto phi = explainer.shap_values(x);
  EXPECT_GT(std::abs(phi[0]), 5.0 * std::abs(phi[3]));
  EXPECT_LT(std::abs(phi[3]), 0.05);
}

TEST(KernelShap, BaseValueIsBackgroundMeanPrediction) {
  const Dataset d = uniform_data(200, 3, 6);
  const RandomForestClassifier forest = fit_forest(d, 10);
  KernelShapOptions options;
  options.n_background = 200;  // use everything
  const KernelShapExplainer explainer(forest, d, options);
  double mean = 0.0;
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    mean += forest.predict_proba(d.row(i));
  }
  EXPECT_NEAR(explainer.base_value(), mean / d.n_rows(), 1e-12);
}

TEST(KernelShap, ValidatesInput) {
  const Dataset d = uniform_data(100, 3, 7);
  const RandomForestClassifier forest = fit_forest(d, 5);
  Dataset empty(3);
  EXPECT_THROW(KernelShapExplainer(forest, empty), std::invalid_argument);
  const KernelShapExplainer explainer(forest, d);
  EXPECT_THROW(explainer.shap_values(std::vector<float>{1.0f}),
               std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
