#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drcshap {
namespace {

const std::vector<double> kScores{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2};
const std::vector<std::uint8_t> kLabels{1, 1, 0, 1, 0, 0, 1, 0};

TEST(Confusion, CountsAtThreshold) {
  const ConfusionCounts c = confusion_at_threshold(kScores, kLabels, 0.65);
  EXPECT_EQ(c.tp, 2u);  // 0.9, 0.8
  EXPECT_EQ(c.fp, 1u);  // 0.7
  EXPECT_EQ(c.fn, 2u);  // 0.6, 0.3
  EXPECT_EQ(c.tn, 3u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.25);
  EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 5.0 / 8.0);
}

TEST(Confusion, DegenerateRatiosAreNaNOrZero) {
  const ConfusionCounts all_neg{0, 0, 5, 0};
  EXPECT_TRUE(std::isnan(all_neg.tpr()));
  EXPECT_DOUBLE_EQ(all_neg.precision(), 0.0);
}

TEST(Roc, PerfectClassifier) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auroc(scores, labels), 1.0);
}

TEST(Roc, WorstClassifier) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<std::uint8_t> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auroc(scores, labels), 0.0);
}

TEST(Roc, RandomScoresNearHalf) {
  Rng rng(5);
  std::vector<double> scores(20000);
  std::vector<std::uint8_t> labels(20000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.2);
  }
  EXPECT_NEAR(auroc(scores, labels), 0.5, 0.02);
}

TEST(Roc, CurveEndpoints) {
  const auto curve = roc_curve(kScores, kLabels);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(Roc, TiedScoresGrouped) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<std::uint8_t> labels{1, 0, 1, 0};
  const auto curve = roc_curve(scores, labels);
  // One threshold group: (0,0) then (1,1).
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(auroc(scores, labels), 0.5);
}

TEST(Roc, OneClassThrowsOrNaN) {
  const std::vector<double> scores{0.1, 0.2};
  const std::vector<std::uint8_t> ones{1, 1};
  EXPECT_THROW(roc_curve(scores, ones), std::invalid_argument);
  EXPECT_TRUE(std::isnan(auroc(scores, ones)));
}

TEST(Pr, PerfectClassifierAuprcIsOne) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auprc(scores, labels), 1.0);
}

TEST(Pr, HandComputedAveragePrecision) {
  // Descending sweep: labels 1,0,1,0 -> AP = 1*0.5 + (2/3)*0.5... recall
  // steps at ranks 1 and 3: AP = 0.5*1.0 + 0.5*(2/3) = 5/6.
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6};
  const std::vector<std::uint8_t> labels{1, 0, 1, 0};
  EXPECT_NEAR(auprc(scores, labels), 5.0 / 6.0, 1e-12);
}

TEST(Pr, BaselineEqualsPositiveRateForConstantScores) {
  const std::vector<double> scores(100, 0.5);
  std::vector<std::uint8_t> labels(100, 0);
  for (int i = 0; i < 10; ++i) labels[static_cast<std::size_t>(i)] = 1;
  EXPECT_NEAR(auprc(scores, labels), 0.1, 1e-12);
}

TEST(Pr, NoPositivesGivesNaN) {
  const std::vector<double> scores{0.1, 0.2};
  const std::vector<std::uint8_t> labels{0, 0};
  EXPECT_TRUE(std::isnan(auprc(scores, labels)));
  EXPECT_THROW(pr_curve(scores, labels), std::invalid_argument);
}

TEST(Pr, CurveRecallMonotone) {
  const auto curve = pr_curve(kScores, kLabels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(OperatingPoint, MaxTprSubjectToFprBudget) {
  // 1000 negatives, 10 positives; positives ranked first except two.
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 8; ++i) {
    scores.push_back(0.99 - i * 0.001);
    labels.push_back(1);
  }
  for (int i = 0; i < 1000; ++i) {
    scores.push_back(0.5 - i * 0.0001);
    labels.push_back(0);
  }
  scores.push_back(0.45);
  labels.push_back(1);
  scores.push_back(0.44);
  labels.push_back(1);
  const OperatingPoint op = operating_point_at_fpr(scores, labels, 0.005);
  // FPR budget = 5 negatives; catching the last two positives would need
  // ~500 negatives, so TPR* = 8/10. The operating threshold sits exactly at
  // FPR = 0.5% (5 false positives), giving precision 8/13 there.
  EXPECT_DOUBLE_EQ(op.tpr, 0.8);
  EXPECT_DOUBLE_EQ(op.fpr, 0.005);
  EXPECT_DOUBLE_EQ(op.precision, 8.0 / 13.0);
}

TEST(OperatingPoint, ZeroWhenFirstGroupExceedsBudget) {
  const std::vector<double> scores{0.9, 0.9, 0.9, 0.9};
  const std::vector<std::uint8_t> labels{1, 0, 1, 0};
  const OperatingPoint op = operating_point_at_fpr(scores, labels, 0.005);
  EXPECT_DOUBLE_EQ(op.tpr, 0.0);
}

TEST(OperatingPoint, OneClassIsNaN) {
  const std::vector<double> scores{0.9, 0.1};
  const std::vector<std::uint8_t> labels{1, 1};
  EXPECT_TRUE(std::isnan(operating_point_at_fpr(scores, labels).tpr));
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> scores{0.9};
  const std::vector<std::uint8_t> labels{1, 0};
  EXPECT_THROW(auroc(scores, labels), std::invalid_argument);
  EXPECT_THROW(confusion_at_threshold(scores, labels, 0.5),
               std::invalid_argument);
}

// Property: AUPRC is invariant under any strictly monotone score transform.
TEST(Metrics, MonotoneTransformInvariance) {
  Rng rng(99);
  std::vector<double> scores(500);
  std::vector<std::uint8_t> labels(500);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.15);
  }
  std::vector<double> transformed(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = std::exp(3.0 * scores[i]) + 1.0;
  }
  EXPECT_NEAR(auprc(scores, labels), auprc(transformed, labels), 1e-12);
  EXPECT_NEAR(auroc(scores, labels), auroc(transformed, labels), 1e-12);
}

}  // namespace
}  // namespace drcshap
