#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/tree_shap.hpp"
#include "util/artifact.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

RandomForestClassifier fitted_forest() {
  Dataset d(4);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    d.append_row(x, (x[0] > 0.5f && x[1] < 0.7f) ? 1 : 0, 0);
  }
  RandomForestOptions options;
  options.n_trees = 9;
  RandomForestClassifier forest(options);
  forest.fit(d);
  return forest;
}

TEST(ModelIo, RoundTripPredictionsIdentical) {
  const RandomForestClassifier original = fitted_forest();
  std::stringstream buffer;
  save_forest(original, buffer);
  const RandomForestClassifier loaded = load_forest(buffer);

  ASSERT_EQ(loaded.trees().size(), original.trees().size());
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    EXPECT_DOUBLE_EQ(loaded.predict_proba(x), original.predict_proba(x));
  }
  EXPECT_EQ(loaded.n_parameters(), original.n_parameters());
}

TEST(ModelIo, RoundTripPreservesShapValues) {
  const RandomForestClassifier original = fitted_forest();
  std::stringstream buffer;
  save_forest(original, buffer);
  const RandomForestClassifier loaded = load_forest(buffer);
  const TreeShapExplainer before(original), after(loaded);
  EXPECT_DOUBLE_EQ(before.base_value(), after.base_value());
  const std::vector<float> x{0.8f, 0.2f, 0.5f, 0.5f};
  const auto phi_a = before.shap_values(x);
  const auto phi_b = after.shap_values(x);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_DOUBLE_EQ(phi_a[f], phi_b[f]);
  }
}

TEST(ModelIo, RoundTripRebuildsIdenticalCompiledLayout) {
  // Loading a saved model must rebuild the compiled inference layout
  // deterministically: same quantization cuts, same breadth-first node
  // arrays, hence the same digest — and byte-identical batch predictions
  // from both engines.
  const RandomForestClassifier original = fitted_forest();
  std::stringstream buffer;
  save_forest(original, buffer);
  const RandomForestClassifier loaded = load_forest(buffer);

  ASSERT_NE(original.compiled(), nullptr);
  ASSERT_NE(loaded.compiled(), nullptr);
  EXPECT_EQ(original.compiled()->layout_digest(),
            loaded.compiled()->layout_digest());

  Dataset eval(4);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    eval.append_row(x, 0, 0);
  }
  const auto exact = original.predict_proba_all(eval, ForestEngine::kExact);
  const auto compiled =
      loaded.predict_proba_all(eval, ForestEngine::kCompiled);
  ASSERT_EQ(exact.size(), compiled.size());
  EXPECT_TRUE(std::memcmp(exact.data(), compiled.data(),
                          exact.size() * sizeof(double)) == 0);
}

TEST(ModelIo, FileRoundTrip) {
  const RandomForestClassifier original = fitted_forest();
  const std::string path = "/tmp/drcshap_model_test.rf";
  save_forest_file(original, path);
  const RandomForestClassifier loaded = load_forest_file(path);
  const std::vector<float> x{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_DOUBLE_EQ(loaded.predict_proba(x), original.predict_proba(x));
  std::remove(path.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ModelIo, EveryTruncationFailsCleanly) {
  const RandomForestClassifier original = fitted_forest();
  const std::string path = "/tmp/drcshap_model_trunc.rf";
  save_forest_file(original, path);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 97u);
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(load_forest_file(path), ArtifactError)
        << "truncation to " << len << " bytes must not parse";
  }
  spit(path, bytes);  // intact copy still loads
  EXPECT_NO_THROW(load_forest_file(path));
  std::remove(path.c_str());
}

TEST(ModelIo, EveryBitFlipFailsCleanly) {
  const RandomForestClassifier original = fitted_forest();
  const std::string path = "/tmp/drcshap_model_flip.rf";
  save_forest_file(original, path);
  const std::string bytes = slurp(path);
  for (std::size_t i = 0; i < bytes.size(); i += 97) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    spit(path, flipped);
    // The checksum trailer catches payload damage; the header check catches
    // the rest. Either way: a typed error, never garbage trees or a crash.
    EXPECT_THROW(load_forest_file(path), ArtifactError)
        << "bit flip at byte " << i << " must not parse";
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsUnfittedAndGarbage) {
  RandomForestClassifier unfitted;
  std::stringstream buffer;
  EXPECT_THROW(save_forest(unfitted, buffer), std::logic_error);
  std::stringstream garbage("HELLO WORLD");
  EXPECT_THROW(load_forest(garbage), std::runtime_error);
  std::stringstream truncated("FOREST 2 4\nTREE 3\n0 0.5 1 2 0.4 10\n");
  EXPECT_THROW(load_forest(truncated), std::runtime_error);
  EXPECT_THROW(load_forest_file("/no/such/file.rf"), std::runtime_error);
}

}  // namespace
}  // namespace drcshap
