#include "baselines/neural_net.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset xor_blobs(std::size_t n, std::uint64_t seed) {
  Dataset d(2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int a = rng.bernoulli(0.5);
    const int b = rng.bernoulli(0.5);
    d.append_row(
        std::vector<float>{static_cast<float>((a ? 1 : -1) + rng.normal() * 0.2),
                           static_cast<float>((b ? 1 : -1) + rng.normal() * 0.2)},
        a ^ b, 0);
  }
  return d;
}

double accuracy(const BinaryClassifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    if ((model.predict_proba(d.row(i)) >= 0.5 ? 1 : 0) == d.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(d.n_rows());
}

TEST(NeuralNet, LearnsXor) {
  const Dataset train = xor_blobs(800, 1);
  const Dataset test = xor_blobs(800, 2);
  NeuralNetOptions options;
  options.hidden_sizes = {16};
  options.epochs = 60;
  NeuralNetClassifier nn(options);
  nn.fit(train);
  EXPECT_GT(accuracy(nn, test), 0.95);
}

TEST(NeuralNet, TwoHiddenLayersWork) {
  const Dataset train = xor_blobs(800, 3);
  NeuralNetOptions options;
  options.hidden_sizes = {16, 8};
  options.epochs = 60;
  NeuralNetClassifier nn(options);
  nn.fit(train);
  EXPECT_GT(accuracy(nn, train), 0.95);
}

TEST(NeuralNet, TrainingReducesLoss) {
  const Dataset train = xor_blobs(500, 4);
  NeuralNetOptions one_epoch;
  one_epoch.hidden_sizes = {16};
  one_epoch.epochs = 1;
  NeuralNetClassifier quick(one_epoch);
  quick.fit(train);
  const double early = quick.loss(train);
  NeuralNetOptions many_epochs = one_epoch;
  many_epochs.epochs = 50;
  NeuralNetClassifier slow(many_epochs);
  slow.fit(train);
  EXPECT_LT(slow.loss(train), early);
}

TEST(NeuralNet, ParameterCountMatchesArchitecture) {
  const Dataset train = xor_blobs(100, 5);
  NeuralNetOptions options;
  options.hidden_sizes = {40};
  options.epochs = 1;
  NeuralNetClassifier nn1(options);
  nn1.fit(train);
  // d=2: (2*40 + 40) + (40*1 + 1) = 120 + 41.
  EXPECT_EQ(nn1.n_parameters(), 161u);

  NeuralNetOptions two;
  two.hidden_sizes = {40, 10};
  two.epochs = 1;
  NeuralNetClassifier nn2(two);
  nn2.fit(train);
  // (2*40+40) + (40*10+10) + (10*1+1) = 120 + 410 + 11.
  EXPECT_EQ(nn2.n_parameters(), 541u);
  EXPECT_GT(nn2.prediction_ops(), nn1.prediction_ops());
}

TEST(NeuralNet, PaperArchitectureParamCountsAt387Features) {
  // Table II quotes 15.6k params for NN-1 and 15.9k for NN-2 on 387 inputs.
  Dataset train(387);
  Rng rng(6);
  std::vector<float> x(387);
  for (int i = 0; i < 20; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    train.append_row(x, i % 2, 0);
  }
  NeuralNetOptions nn1_options;
  nn1_options.hidden_sizes = {40};
  nn1_options.epochs = 1;
  NeuralNetClassifier nn1(nn1_options);
  nn1.fit(train);
  EXPECT_EQ(nn1.n_parameters(), 387u * 40u + 40u + 40u + 1u);  // 15601
  NeuralNetOptions nn2_options;
  nn2_options.hidden_sizes = {40, 10};
  nn2_options.epochs = 1;
  NeuralNetClassifier nn2(nn2_options);
  nn2.fit(train);
  EXPECT_EQ(nn2.n_parameters(), 387u * 40u + 40u + 40u * 10u + 10u + 11u);
}

TEST(NeuralNet, GradientsMatchFiniteDifferences) {
  // Train one step on a tiny net and compare the analytic loss decrease
  // direction with finite differences — indirectly validated by checking
  // single-epoch training reduces loss on a fixed batch.
  Dataset train(2);
  train.append_row(std::vector<float>{1.0f, 0.0f}, 1, 0);
  train.append_row(std::vector<float>{0.0f, 1.0f}, 0, 0);
  NeuralNetOptions options;
  options.hidden_sizes = {4};
  options.epochs = 1;
  options.batch_size = 2;
  options.learning_rate = 0.05;
  NeuralNetClassifier nn(options);
  nn.fit(train);
  const double after_one = nn.loss(train);
  NeuralNetOptions more = options;
  more.epochs = 200;
  NeuralNetClassifier nn2(more);
  nn2.fit(train);
  EXPECT_LT(nn2.loss(train), after_one);
  EXPECT_LT(nn2.loss(train), 0.05);  // fully memorizes two points
}

TEST(NeuralNet, AutoPositiveWeightCapped) {
  Dataset train(2);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const int label = i < 10 ? 1 : 0;
    train.append_row(
        std::vector<float>{static_cast<float>(label + rng.normal() * 0.1),
                           static_cast<float>(rng.normal())},
        label, 0);
  }
  NeuralNetOptions options;
  options.epochs = 5;
  NeuralNetClassifier nn(options);
  EXPECT_NO_THROW(nn.fit(train));  // weight = min(50, 199) = 50, no blow-up
  EXPECT_GT(accuracy(nn, train), 0.9);
}

TEST(NeuralNet, DeterministicForSeed) {
  const Dataset train = xor_blobs(300, 8);
  NeuralNetOptions options;
  options.epochs = 5;
  NeuralNetClassifier a(options), b(options);
  a.fit(train);
  b.fit(train);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(train.row(i)),
                     b.predict_proba(train.row(i)));
  }
}

TEST(NeuralNet, NameReflectsConfiguration) {
  NeuralNetOptions options;
  options.display_name = "NN-2";
  EXPECT_EQ(NeuralNetClassifier(options).name(), "NN-2");
}

TEST(NeuralNet, ValidatesInput) {
  EXPECT_THROW(NeuralNetClassifier(NeuralNetOptions{.hidden_sizes = {0}}),
               std::invalid_argument);
  EXPECT_THROW(NeuralNetClassifier(NeuralNetOptions{.epochs = 0}),
               std::invalid_argument);
  NeuralNetClassifier nn;
  EXPECT_THROW(nn.predict_proba(std::vector<float>{1.0f, 2.0f}),
               std::logic_error);
}

}  // namespace
}  // namespace drcshap
