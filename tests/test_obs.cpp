#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/explanation_cache.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {
namespace {

// Every test starts from an empty registry; the compile-time switch decides
// whether anything is recorded at all (both configurations run in CI).
class Obs : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
};

// ------------------------------------------------------------------ counters

TEST_F(Obs, CounterSumsAcrossConcurrentWorkers) {
  ThreadPool pool(4);
  pool.parallel_for(10000, [](std::size_t) {
    obs::counter_add("obs_test/hits");
  });
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(snap.counters.empty());
    return;
  }
  ASSERT_TRUE(snap.counters.contains("obs_test/hits"));
  EXPECT_EQ(snap.counters.at("obs_test/hits"), 10000u);
}

TEST_F(Obs, CounterDeltaAccumulates) {
  obs::counter_add("obs_test/delta", 5);
  obs::counter_add("obs_test/delta", 7);
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) return;
  EXPECT_EQ(snap.counters.at("obs_test/delta"), 12u);
}

TEST_F(Obs, MergeIsDeterministicAcrossRuns) {
  // The merged snapshot is a pure function of the recorded operations —
  // shard layout and thread scheduling must not leak into it. Run the same
  // concurrent workload twice on fresh pools and compare.
  auto run_once = [] {
    obs::reset();
    ThreadPool pool(4);
    pool.parallel_for(4096, [](std::size_t i) {
      obs::counter_add("obs_test/a");
      if (i % 2 == 0) obs::counter_add("obs_test/b", 3);
      obs::timer_record("obs_test/t", 1000);
    });
    return obs::snapshot();
  };
  const obs::Snapshot first = run_once();
  const obs::Snapshot second = run_once();
  EXPECT_EQ(first.counters, second.counters);
  ASSERT_EQ(first.timers.size(), second.timers.size());
  for (const auto& [name, stat] : first.timers) {
    ASSERT_TRUE(second.timers.contains(name));
    EXPECT_EQ(stat.count, second.timers.at(name).count);
    EXPECT_EQ(stat.total_ns, second.timers.at(name).total_ns);
  }
  if (obs::kEnabled) {
    EXPECT_EQ(first.counters.at("obs_test/a"), 4096u);
    EXPECT_EQ(first.counters.at("obs_test/b"), 3u * 2048u);
    EXPECT_EQ(first.timers.at("obs_test/t").count, 4096u);
    EXPECT_EQ(first.timers.at("obs_test/t").total_ns, 4096u * 1000u);
  }
}

TEST_F(Obs, ExitedThreadDataSurvivesInSnapshot) {
  std::thread worker([] { obs::counter_add("obs_test/from_thread", 42); });
  worker.join();
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) return;
  EXPECT_EQ(snap.counters.at("obs_test/from_thread"), 42u);
}

// -------------------------------------------------------------------- timers

TEST_F(Obs, ScopedTimerRecordsEachScope) {
  for (int i = 0; i < 3; ++i) {
    DRCSHAP_OBS_TIMER("obs_test/scoped");
  }
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(snap.timers.empty());
    return;
  }
  const obs::TimerStat& stat = snap.timers.at("obs_test/scoped");
  EXPECT_EQ(stat.count, 3u);
  EXPECT_GE(stat.total_ns, stat.max_ns);
}

TEST_F(Obs, TimerStatDerivedUnits) {
  obs::TimerStat stat;
  stat.count = 4;
  stat.total_ns = 8'000'000;
  stat.max_ns = 5'000'000;
  EXPECT_DOUBLE_EQ(stat.total_ms(), 8.0);
  EXPECT_DOUBLE_EQ(stat.mean_ms(), 2.0);
  EXPECT_DOUBLE_EQ(obs::TimerStat{}.mean_ms(), 0.0);
}

TEST_F(Obs, ConcurrentTimersKeepMaxOfAnyScope) {
  ThreadPool pool(3);
  pool.parallel_for(64, [](std::size_t i) {
    obs::timer_record("obs_test/max", (i + 1) * 10);
  });
  if (!obs::kEnabled) return;
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.timers.at("obs_test/max").max_ns, 640u);
}

// -------------------------------------------------------------------- gauges

TEST_F(Obs, GaugeLastWriteWins) {
  obs::gauge_set("obs_test/g", 1.5);
  obs::gauge_set("obs_test/g", 2.5);
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) return;
  EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test/g"), 2.5);
}

TEST_F(Obs, GaugeLastWriteWinsAcrossThreads) {
  // Sequenced writes from different threads: the later one must win even
  // though it lives in a different shard.
  obs::gauge_set("obs_test/xg", 1.0);
  std::thread worker([] { obs::gauge_set("obs_test/xg", 9.0); });
  worker.join();
  if (!obs::kEnabled) return;
  EXPECT_DOUBLE_EQ(obs::snapshot().gauges.at("obs_test/xg"), 9.0);
}

// --------------------------------------------------------------------- notes

TEST_F(Obs, NoteLastWriteWins) {
  obs::note_set("obs_test/n", "first");
  obs::note_set("obs_test/n", "second");
  const obs::Snapshot snap = obs::snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(snap.notes.empty());
    return;
  }
  EXPECT_EQ(snap.notes.at("obs_test/n"), "second");
}

TEST_F(Obs, NoteLastWriteWinsAcrossThreads) {
  obs::note_set("obs_test/xn", "main");
  std::thread worker([] { obs::note_set("obs_test/xn", "worker"); });
  worker.join();
  if (!obs::kEnabled) return;
  EXPECT_EQ(obs::snapshot().notes.at("obs_test/xn"), "worker");
}

// --------------------------------------------------------------------- reset

TEST_F(Obs, ResetClearsEverything) {
  obs::counter_add("obs_test/c");
  obs::gauge_set("obs_test/g", 1.0);
  obs::timer_record("obs_test/t", 10);
  obs::note_set("obs_test/n", "v");
  obs::reset();
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.notes.empty());
}

// ------------------------------------------------------- compile-time switch

TEST_F(Obs, DisabledBuildRecordsNothing) {
  // With -DDRCSHAP_OBS=OFF every primitive is an inline no-op; with ON this
  // is the positive control. Either way the API stays callable.
  obs::counter_add("obs_test/switch");
  obs::gauge_set("obs_test/switch_g", 1.0);
  {
    DRCSHAP_OBS_TIMER("obs_test/switch_t");
  }
  const obs::Snapshot snap = obs::snapshot();
  if (obs::kEnabled) {
    EXPECT_EQ(snap.counters.at("obs_test/switch"), 1u);
    EXPECT_EQ(snap.timers.at("obs_test/switch_t").count, 1u);
  } else {
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.timers.empty());
  }
}

// ---------------------------------------------------------------------- json

TEST(ObsJson, ParsesScalarsAndNesting) {
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  const auto& b = v.at("b").as_array();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].as_bool());
  EXPECT_TRUE(b[1].is_null());
  EXPECT_EQ(b[2].as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").as_number(), -2000.0);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("{\"a\": 1} junk"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("nope"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(ObsJson, DumpParseRoundTrip) {
  obs::JsonValue doc = obs::JsonValue::make_object();
  doc["name"] = "run \"1\"\n";
  doc["count"] = std::uint64_t{12345};
  doc["ratio"] = 0.23;
  doc["flag"] = true;
  obs::JsonValue list = obs::JsonValue::make_array();
  list.push_back(1);
  list.push_back("two");
  doc["list"] = std::move(list);

  for (const int indent : {0, 2}) {
    const obs::JsonValue back = obs::JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back.at("name").as_string(), "run \"1\"\n");
    EXPECT_DOUBLE_EQ(back.at("count").as_number(), 12345.0);
    EXPECT_DOUBLE_EQ(back.at("ratio").as_number(), 0.23);
    EXPECT_TRUE(back.at("flag").as_bool());
    ASSERT_EQ(back.at("list").as_array().size(), 2u);
    EXPECT_EQ(back.at("list").as_array()[1].as_string(), "two");
  }
}

TEST(ObsJson, MissingKeyThrows) {
  const obs::JsonValue v = obs::JsonValue::parse(R"({"a": 1})");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_THROW(v.at("b"), std::out_of_range);
}

// ---------------------------------------------------------------- run report

TEST_F(Obs, RunReportRoundTripsThroughJson) {
  obs::counter_add("obs_test/report_counter", 7);
  obs::gauge_set("obs_test/report_gauge", 0.5);
  obs::timer_record("obs_test/report_timer", 2'000'000);
  obs::note_set("obs_test/report_note", "quarantined: boom");

  obs::RunReportOptions options;
  options.tool = "test_obs";
  options.seed = 1234;
  options.n_threads = 4;
  options.extra["scenario"] = "round-trip";

  const obs::JsonValue report =
      obs::JsonValue::parse(obs::build_run_report(options).dump(2));

  EXPECT_EQ(report.at("tool").as_string(), "test_obs");
  const obs::JsonValue& prov = report.at("provenance");
  for (const char* key : {"git_sha", "compiler", "build_type", "cxx_flags",
                          "timestamp_utc", "hardware_threads"}) {
    EXPECT_TRUE(prov.contains(key)) << key;
  }
  EXPECT_EQ(prov.at("obs_enabled").as_bool(), obs::kEnabled);
  EXPECT_DOUBLE_EQ(prov.at("seed").as_number(), 1234.0);
  EXPECT_DOUBLE_EQ(prov.at("n_threads").as_number(), 4.0);
  EXPECT_EQ(prov.at("scenario").as_string(), "round-trip");

  if (obs::kEnabled) {
    EXPECT_DOUBLE_EQ(
        report.at("counters").at("obs_test/report_counter").as_number(), 7.0);
    EXPECT_DOUBLE_EQ(
        report.at("gauges").at("obs_test/report_gauge").as_number(), 0.5);
    const obs::JsonValue& timer =
        report.at("timers").at("obs_test/report_timer");
    EXPECT_DOUBLE_EQ(timer.at("count").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(timer.at("total_ms").as_number(), 2.0);
    EXPECT_EQ(report.at("notes").at("obs_test/report_note").as_string(),
              "quarantined: boom");
  } else {
    EXPECT_TRUE(report.at("counters").as_object().empty());
    EXPECT_TRUE(report.at("timers").as_object().empty());
    EXPECT_TRUE(report.at("notes").as_object().empty());
  }
}

TEST_F(Obs, RunReportWritesParsableFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drcshap_runreport_test.json")
          .string();
  obs::counter_add("obs_test/file_counter");
  obs::RunReportOptions options;
  options.tool = "test_obs_file";
  obs::write_run_report(path, options);

  const obs::JsonValue report = obs::JsonValue::parse_file(path);
  EXPECT_EQ(report.at("tool").as_string(), "test_obs_file");
  EXPECT_DOUBLE_EQ(report.at("schema_version").as_number(), 1.0);
  std::remove(path.c_str());
}

TEST_F(Obs, InstrumentedStagesAppearInSnapshot) {
  // End-to-end: the library's own instrumentation points must populate the
  // registry when their code paths run (here: fit + predict + batched SHAP
  // through the public API; the route/features stages are covered by the
  // pipeline-driven integration tests and bench binaries).
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  // Dataset/forest kept tiny: this checks presence, not performance.
  Dataset data(4);
  std::vector<float> row(4);
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform());
    data.append_row(row, row[0] > 0.5f ? 1 : 0, 0);
  }
  RandomForestOptions fopts;
  fopts.n_trees = 5;
  fopts.n_threads = 2;
  RandomForestClassifier forest(fopts);
  forest.fit(data);
  (void)forest.predict_proba_all(data);
  const TreeShapExplainer explainer(forest);
  (void)explainer.shap_values_batch(data, 2);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.timers.contains("forest/fit"));
  EXPECT_TRUE(snap.timers.contains("forest/predict_all"));
  EXPECT_TRUE(snap.timers.contains("shap/values_batch"));
  EXPECT_EQ(snap.counters.at("forest/rows_scored"), 64u);
  EXPECT_EQ(snap.counters.at("shap/batch_samples"), 64u);
  // The batch engine dedupes rows whose explanation keys coincide (under
  // the compiled engine, rows that quantize identically), so traversals
  // count unique rows — never more than rows * trees.
  ASSERT_TRUE(snap.counters.contains("shap/batch_unique_rows"));
  const std::uint64_t unique_rows =
      snap.counters.at("shap/batch_unique_rows");
  EXPECT_GE(unique_rows, 1u);
  EXPECT_LE(unique_rows, 64u);
  EXPECT_EQ(snap.counters.at("shap/tree_traversals"), unique_rows * 5u);
}

TEST_F(Obs, ShapWalkNoteAndCacheCountersSurface) {
  // The fast-path instrumentation: which walk ran (reference / scalar /
  // avx2) is a note, and an attached explanation cache reports its
  // hit/miss traffic as counters.
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  // Pin the cache on: the CI kill-switch leg exports DRCSHAP_EXPLAIN_CACHE=0.
  const char* saved_cache = std::getenv("DRCSHAP_EXPLAIN_CACHE");
  const std::string saved_cache_value =
      saved_cache != nullptr ? saved_cache : "";
  ::setenv("DRCSHAP_EXPLAIN_CACHE", "1", 1);
  Dataset data(4);
  std::vector<float> row(4);
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform());
    data.append_row(row, row[0] > 0.5f ? 1 : 0, 0);
  }
  RandomForestOptions fopts;
  fopts.n_trees = 4;
  fopts.n_threads = 1;
  RandomForestClassifier forest(fopts);
  forest.fit(data);

  TreeShapExplainer explainer(forest);
  explainer.set_cache(std::make_shared<ExplanationCache>());
  (void)explainer.shap_values_batch(data, 1);  // cold: all misses
  (void)explainer.shap_values_batch(data, 1);  // warm: all hits

  const obs::Snapshot snap = obs::snapshot();
  ASSERT_TRUE(snap.notes.contains("shap/walk"));
  const std::string& walk = snap.notes.at("shap/walk");
  EXPECT_TRUE(walk == "reference" || walk == "scalar" || walk == "avx2")
      << walk;
  EXPECT_TRUE(snap.notes.contains("shap/fast_path"));
  ASSERT_TRUE(snap.counters.contains("shap/cache_misses"));
  ASSERT_TRUE(snap.counters.contains("shap/cache_hits"));
  EXPECT_GT(snap.counters.at("shap/cache_misses"), 0u);
  EXPECT_GT(snap.counters.at("shap/cache_hits"), 0u);
  if (saved_cache != nullptr) {
    ::setenv("DRCSHAP_EXPLAIN_CACHE", saved_cache_value.c_str(), 1);
  } else {
    ::unsetenv("DRCSHAP_EXPLAIN_CACHE");
  }
}

TEST_F(Obs, SubstrateCountersAppearInRunReport) {
  // The EDA-substrate instrumentation points — maze expansions, rip-up
  // iterations, DRC cells scored — must populate both the snapshot and a
  // written run report when a pipeline actually runs. fft_b at scale 16 is
  // congested enough that the rip-up loop always iterates.
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  PipelineOptions options;
  options.generator.scale = 16.0;
  const DesignRun run = run_pipeline(suite_spec("fft_b"), options);

  const obs::Snapshot snap = obs::snapshot();
  ASSERT_TRUE(snap.counters.contains("route/maze_expansions"));
  EXPECT_GT(snap.counters.at("route/maze_expansions"), 0u);
  ASSERT_TRUE(snap.counters.contains("route/ripup_iterations"));
  EXPECT_GT(snap.counters.at("route/ripup_iterations"), 0u);
  ASSERT_TRUE(snap.counters.contains("drc/cells_scored"));
  EXPECT_EQ(snap.counters.at("drc/cells_scored"),
            run.design.grid().size());

  const std::string path =
      (std::filesystem::temp_directory_path() / "drcshap_substrate_obs.json")
          .string();
  obs::RunReportOptions report_options;
  report_options.tool = "test_obs_substrate";
  obs::write_run_report(path, report_options);
  const obs::JsonValue report = obs::JsonValue::parse_file(path);
  for (const char* key : {"route/maze_expansions", "route/ripup_iterations",
                          "drc/cells_scored"}) {
    EXPECT_TRUE(report.at("counters").contains(key)) << key;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace drcshap
