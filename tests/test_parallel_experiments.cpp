// Experiment-level parallelism: the shared global pool's nesting policy and
// the bit-identical guarantee of parallel build_suite_dataset /
// grouped_cross_validate / grid_search / SVM kernel rows versus their serial
// paths. The *.Nested* and ParallelExperiments.* tests run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "baselines/svm_rbf.hpp"
#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/random_forest.hpp"
#include "ml/cross_validation.hpp"
#include "ml/grid_search.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {
namespace {

// ---------------------------------------------------------------- SharedPool

TEST(SharedPool, GlobalIsOneInstanceWithAtLeastTwoWorkers) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 2u);
}

TEST(SharedPool, MaxWorkersCapsConcurrency) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> threads;
  pool.parallel_for(
      100,
      [&](std::size_t) {
        std::lock_guard lock(mutex);
        threads.insert(std::this_thread::get_id());
      },
      /*grain=*/1, /*max_workers=*/2);
  EXPECT_LE(threads.size(), 2u);
}

TEST(SharedPool, NestedParallelForDegradesToSerialOnTheOuterWorker) {
  ThreadPool pool(3);
  std::atomic<int> outer_done{0};
  std::atomic<bool> nested_ok{true};
  pool.parallel_for(
      6,
      [&](std::size_t) {
        const std::thread::id outer_thread = std::this_thread::get_id();
        EXPECT_TRUE(ThreadPool::in_parallel_region());
        // The inner range must run inline on this worker, in order.
        std::size_t expected = 0;
        pool.parallel_for(50, [&](std::size_t i) {
          if (std::this_thread::get_id() != outer_thread || i != expected) {
            nested_ok = false;
          }
          ++expected;
        });
        if (expected != 50) nested_ok = false;
        ++outer_done;
      },
      /*grain=*/1);
  EXPECT_EQ(outer_done.load(), 6);
  EXPECT_TRUE(nested_ok.load());
}

TEST(SharedPool, ParallelForSharedSerialCapRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for_shared(
      20, [&](std::size_t i) { order.push_back(i); }, /*n_threads=*/1);
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
}

TEST(SharedPool, ParallelForSharedCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for_shared(500, [&](std::size_t i) { ++hits[i]; }, /*n_threads=*/8,
                      /*grain=*/3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------------- experiment helpers

/// x0 correlates with the label; 4 groups of 120 rows.
Dataset grouped_data(std::uint64_t seed = 4242) {
  Dataset d(3);
  Rng rng(seed);
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 120; ++i) {
      const int label = rng.bernoulli(0.25) ? 1 : 0;
      const float x0 = static_cast<float>(label * 2.0 + rng.normal(0.0, 0.8));
      const float x1 = static_cast<float>(rng.normal(0.0, 1.0));
      d.append_row(
          std::vector<float>{x0, x1, static_cast<float>(g)}, label, g);
    }
  }
  return d;
}

ModelFactory small_forest_factory() {
  return [] {
    RandomForestOptions o;
    o.n_trees = 20;
    o.max_depth = 6;
    return std::make_unique<RandomForestClassifier>(o);
  };
}

// ------------------------------------------------------ ParallelExperiments

TEST(ParallelExperiments, SuiteBuildBitIdenticalAcrossThreadCounts) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  const std::vector<BenchmarkSpec> specs = {
      suite_spec("fft_1"), suite_spec("fft_2"), suite_spec("des_perf_1")};
  const Dataset serial = build_suite_dataset(specs, options, nullptr, 1);
  for (const std::size_t n_threads : {2u, 8u}) {
    std::vector<std::string> seen;
    const Dataset parallel = build_suite_dataset(
        specs, options,
        [&](const DesignRun& run) { seen.push_back(run.spec.name); },
        n_threads);
    EXPECT_EQ(parallel.features_flat(), serial.features_flat())
        << "n_threads=" << n_threads;
    EXPECT_EQ(parallel.labels(), serial.labels());
    EXPECT_EQ(parallel.groups(), serial.groups());
    // on_design fires on the calling thread, in spec order.
    EXPECT_EQ(seen, (std::vector<std::string>{"fft_1", "fft_2", "des_perf_1"}));
  }
}

TEST(ParallelExperiments, GroupedCvBitIdenticalAcrossThreadCounts) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const auto serial =
      grouped_cross_validate(small_forest_factory(), data, groups, 1);
  ASSERT_EQ(serial.fold_auprc.size(), 4u);
  for (const std::size_t n_threads : {2u, 8u}) {
    const auto parallel =
        grouped_cross_validate(small_forest_factory(), data, groups, n_threads);
    ASSERT_EQ(parallel.fold_auprc.size(), serial.fold_auprc.size());
    for (std::size_t f = 0; f < serial.fold_auprc.size(); ++f) {
      EXPECT_EQ(parallel.fold_auprc[f], serial.fold_auprc[f])
          << "fold " << f << ", n_threads=" << n_threads;
    }
    EXPECT_EQ(parallel.mean_auprc, serial.mean_auprc);
  }
}

TEST(ParallelExperiments, GridSearchBitIdenticalAcrossThreadCounts) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const ParamModelFactory factory = [](const ParamSet& p) {
    RandomForestOptions o;
    o.n_trees = 10;
    o.max_depth = static_cast<int>(p.at("depth"));
    o.min_samples_leaf = static_cast<std::size_t>(p.at("leaf"));
    return std::make_unique<RandomForestClassifier>(o);
  };
  const std::map<std::string, std::vector<double>> grid{
      {"depth", {3.0, 5.0}}, {"leaf", {1.0, 4.0}}};
  const auto serial = grid_search(factory, data, groups, grid, 1);
  ASSERT_EQ(serial.evaluations.size(), 4u);
  for (const std::size_t n_threads : {2u, 8u}) {
    const auto parallel = grid_search(factory, data, groups, grid, n_threads);
    EXPECT_EQ(parallel.best_params, serial.best_params);
    EXPECT_EQ(parallel.best_score, serial.best_score);
    ASSERT_EQ(parallel.evaluations.size(), serial.evaluations.size());
    for (std::size_t c = 0; c < serial.evaluations.size(); ++c) {
      EXPECT_EQ(parallel.evaluations[c].first, serial.evaluations[c].first);
      EXPECT_EQ(parallel.evaluations[c].second, serial.evaluations[c].second);
    }
  }
}

// Outer CV fold x inner forest fit/predict: the inner parallel_for calls
// must degrade to serial on their fold's worker (no oversubscription, no
// deadlock) and leave the scores bit-identical. This is the nested path the
// CI TSan job exercises.
TEST(ParallelExperiments, NestedCvOverForestFitMatchesSerial) {
  const Dataset data = grouped_data(7);
  const std::vector<int> groups{0, 1, 2, 3};
  const ModelFactory nested_factory = [] {
    RandomForestOptions o;
    o.n_trees = 16;
    o.max_depth = 5;
    o.n_threads = 0;  // would fan out, but degrades serial inside a fold
    return std::make_unique<RandomForestClassifier>(o);
  };
  const auto serial = grouped_cross_validate(nested_factory, data, groups, 1);
  const auto nested = grouped_cross_validate(nested_factory, data, groups, 8);
  ASSERT_EQ(nested.fold_auprc.size(), serial.fold_auprc.size());
  for (std::size_t f = 0; f < serial.fold_auprc.size(); ++f) {
    EXPECT_EQ(nested.fold_auprc[f], serial.fold_auprc[f]);
  }
}

TEST(ParallelExperiments, CvEmitsPerFoldTimersAndCounters) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "built with DRCSHAP_OBS=OFF";
  }
  obs::reset();
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  grouped_cross_validate(small_forest_factory(), data, groups, 2);
  const obs::Snapshot snap = obs::snapshot();
  ASSERT_TRUE(snap.timers.count("cv/fold"));
  EXPECT_EQ(snap.timers.at("cv/fold").count, 4u);
  ASSERT_TRUE(snap.counters.count("cv/folds"));
  EXPECT_EQ(snap.counters.at("cv/folds"), 4u);
  ASSERT_TRUE(snap.timers.count("cv/run"));
}

TEST(ParallelExperiments, GridSearchEmitsPerCandidateTimers) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "built with DRCSHAP_OBS=OFF";
  }
  obs::reset();
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const ParamModelFactory factory = [](const ParamSet& p) {
    RandomForestOptions o;
    o.n_trees = 8;
    o.max_depth = static_cast<int>(p.at("depth"));
    return std::make_unique<RandomForestClassifier>(o);
  };
  grid_search(factory, data, groups, {{"depth", {3.0, 5.0}}}, 2);
  const obs::Snapshot snap = obs::snapshot();
  ASSERT_TRUE(snap.timers.count("grid/candidate"));
  EXPECT_EQ(snap.timers.at("grid/candidate").count, 2u);
  ASSERT_TRUE(snap.counters.count("grid/candidates"));
  EXPECT_EQ(snap.counters.at("grid/candidates"), 2u);
}

// ------------------------------------------------------------- SvmParallel

/// Two overlapping blobs, enough rows that SMO revisits kernel rows.
Dataset svm_data() {
  Dataset d(4);
  Rng rng(99);
  for (int i = 0; i < 240; ++i) {
    const int label = i % 3 == 0 ? 1 : 0;
    std::vector<float> row(4);
    for (std::size_t f = 0; f < 4; ++f) {
      row[f] = static_cast<float>(rng.normal(label * 1.2, 1.0));
    }
    d.append_row(row, label, 0);
  }
  return d;
}

TEST(SvmParallel, KernelRowsBitIdenticalAcrossThreadCountsAndCacheSizes) {
  const Dataset data = svm_data();
  SvmRbfOptions serial_options;
  serial_options.n_threads = 1;
  SvmRbfClassifier serial(serial_options);
  serial.fit(data);

  SvmRbfOptions parallel_options;
  parallel_options.n_threads = 8;
  SvmRbfOptions tiny_cache_options;
  tiny_cache_options.n_threads = 8;
  tiny_cache_options.kernel_cache_mb = 0;  // floor of 2 resident rows
  for (const SvmRbfOptions& options : {parallel_options, tiny_cache_options}) {
    SvmRbfClassifier svm(options);
    svm.fit(data);
    EXPECT_EQ(svm.n_support_vectors(), serial.n_support_vectors());
    EXPECT_EQ(svm.iterations_used(), serial.iterations_used());
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(svm.decision_value(data.row(i)),
                serial.decision_value(data.row(i)))
          << "row " << i << ", cache_mb=" << options.kernel_cache_mb;
    }
  }
}

TEST(SvmParallel, LruCacheHitsOnRevisitedRows) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "built with DRCSHAP_OBS=OFF";
  }
  obs::reset();
  SvmRbfClassifier svm;
  svm.fit(svm_data());
  ASSERT_GT(svm.iterations_used(), 0u);
  const obs::Snapshot snap = obs::snapshot();
  ASSERT_TRUE(snap.counters.count("svm/kernel_rows_computed"));
  const std::uint64_t computed = snap.counters.at("svm/kernel_rows_computed");
  const std::uint64_t hits = snap.counters.count("svm/kernel_row_hits")
                                 ? snap.counters.at("svm/kernel_row_hits")
                                 : 0;
  // Two rows are touched per SMO step; with a revisited working set the
  // cache must serve most touches without recomputation.
  EXPECT_GE(computed + hits, 2 * svm.iterations_used());
  EXPECT_GT(hits, 0u);
  EXPECT_LE(computed, 240u);  // never more than one compute per row
}

}  // namespace
}  // namespace drcshap
