#include "place/placer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/def_io.hpp"

namespace drcshap {
namespace {

NetlistSpec small_spec() {
  NetlistSpec spec;
  spec.name = "placer_toy";
  spec.die = {0, 0, 100, 100};
  spec.gcells_x = 10;
  spec.gcells_y = 10;
  spec.clusters = {{{25, 25}, 10.0}, {{75, 75}, 10.0}};
  for (int i = 0; i < 400; ++i) {
    CellSpec c;
    c.width = 1.0 + (i % 5) * 0.3;
    c.height = 2.0;
    c.cluster = static_cast<std::uint32_t>(i % 2);
    spec.cells.push_back(c);
  }
  for (std::uint32_t i = 0; i + 1 < 400; i += 2) {
    spec.nets.push_back({{i, i + 1}, false, false});
  }
  return spec;
}

TEST(Placer, AllCellsInsideDie) {
  const Design d = place_design(small_spec());
  for (const Cell& c : d.cells()) {
    EXPECT_TRUE(d.die().contains(c.box)) << c.name;
  }
}

TEST(Placer, NoCellOverlaps) {
  const Design d = place_design(small_spec());
  // O(n^2) is fine at this size.
  for (std::size_t i = 0; i < d.num_cells(); ++i) {
    for (std::size_t j = i + 1; j < d.num_cells(); ++j) {
      EXPECT_FALSE(d.cell(static_cast<CellId>(i))
                       .box.overlaps(d.cell(static_cast<CellId>(j)).box))
          << i << " vs " << j;
    }
  }
}

TEST(Placer, MacroKeepOutRespected) {
  NetlistSpec spec = small_spec();
  spec.macros.push_back({"m", {40, 40, 60, 60}, 4});
  const Design d = place_design(spec);
  for (const Cell& c : d.cells()) {
    EXPECT_FALSE(c.box.overlaps(d.macro(0).box)) << c.name;
  }
}

TEST(Placer, MacroBecomesRoutingBlockage) {
  NetlistSpec spec = small_spec();
  spec.macros.push_back({"m", {40, 40, 60, 60}, 4});
  const Design d = place_design(spec);
  bool found = false;
  for (const Blockage& b : d.blockages()) {
    if (b.box == d.macro(0).box) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Placer, EveryNetGetsOnePinPerListedCell) {
  const NetlistSpec spec = small_spec();
  const Design d = place_design(spec);
  ASSERT_EQ(d.num_nets(), spec.nets.size());
  for (std::size_t n = 0; n < spec.nets.size(); ++n) {
    EXPECT_EQ(d.net(static_cast<NetId>(n)).pins.size(), spec.nets[n].cells.size());
  }
}

TEST(Placer, PinsInsideOwningCell) {
  const Design d = place_design(small_spec());
  for (const Pin& p : d.pins()) {
    ASSERT_NE(p.cell, kInvalidId);
    EXPECT_TRUE(d.cell(p.cell).box.contains(p.position));
  }
}

TEST(Placer, DeterministicForFixedSeed) {
  const Design a = place_design(small_spec());
  const Design b = place_design(small_spec());
  std::stringstream sa, sb;
  write_def_lite(a, sa);
  write_def_lite(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Placer, SeedChangesPlacement) {
  PlacerOptions o1, o2;
  o2.seed = 999;
  const Design a = place_design(small_spec(), o1);
  const Design b = place_design(small_spec(), o2);
  std::stringstream sa, sb;
  write_def_lite(a, sa);
  write_def_lite(b, sb);
  EXPECT_NE(sa.str(), sb.str());
}

TEST(Placer, ClusteringBiasesLocation) {
  // Cells of cluster 0 should land nearer (25,25) than cells of cluster 1.
  const Design d = place_design(small_spec());
  double d0 = 0.0, d1 = 0.0;
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < d.num_cells(); ++i) {
    const Point c = d.cell(static_cast<CellId>(i)).box.center();
    if (i % 2 == 0) {
      d0 += manhattan(c, {25, 25});
      ++n0;
    } else {
      d1 += manhattan(c, {25, 25});
      ++n1;
    }
  }
  EXPECT_LT(d0 / n0, d1 / n1);
}

TEST(Placer, MultiHeightCellsSpanTwoRows) {
  NetlistSpec spec = small_spec();
  spec.cells[0].multi_height = true;
  spec.cells[0].height = 4.0;
  const Design d = place_design(spec);
  EXPECT_DOUBLE_EQ(d.cell(0).box.height(), 4.0);
  EXPECT_TRUE(d.cell(0).is_multi_height);
}

TEST(Placer, ThrowsWhenDieTooFull) {
  NetlistSpec spec = small_spec();
  for (auto& c : spec.cells) c.width = 40.0;  // 400 cells x 40um in 100um die
  EXPECT_THROW(place_design(spec), std::runtime_error);
}

TEST(Placer, ValidatesOptions) {
  PlacerOptions bad;
  bad.row_height = 0.0;
  EXPECT_THROW(place_design(small_spec(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
