// Parameterized property sweeps (TEST_P): invariants that must hold across
// randomized instances, not just hand-picked cases.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/brute_force_shap.hpp"
#include "core/tree_shap.hpp"
#include "ml/metrics.hpp"
#include "route/global_router.hpp"
#include "route/maze_router.hpp"
#include "route/pattern_router.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

// ---------------------------------------------------------------- routing

struct RouteCase {
  std::size_t nx, ny, n_nets;
  std::uint64_t seed;
};

class RoutingProperties : public ::testing::TestWithParam<RouteCase> {};

Design random_instance(const RouteCase& c) {
  Design d("prop", {0, 0, 10.0 * c.nx, 10.0 * c.ny}, c.nx, c.ny);
  Rng rng(c.seed);
  for (std::size_t i = 0; i < c.n_nets; ++i) {
    const NetId n = d.add_net({"n" + std::to_string(i), {}, false, false});
    const std::size_t pins = 2 + rng.index(3);
    for (std::size_t p = 0; p < pins; ++p) {
      d.add_pin({kInvalidId, n,
                 {rng.uniform(0.0, 10.0 * c.nx), rng.uniform(0.0, 10.0 * c.ny)},
                 false, false});
    }
  }
  return d;
}

TEST_P(RoutingProperties, LoadsEqualCommittedPaths) {
  const Design d = random_instance(GetParam());
  const GlobalRouteResult result = global_route(d);
  // Sum of all edge loads equals the number of edges across all paths.
  long path_edges = 0;
  for (const NetRoute& route : result.routes) {
    for (const RoutePath& seg : route.segments) {
      path_edges += static_cast<long>(seg.edges.size());
    }
  }
  long graph_load = 0;
  for (std::size_t e = 0; e < result.graph.num_edges(); ++e) {
    graph_load += result.graph.edge_load(static_cast<EdgeId>(e));
  }
  EXPECT_EQ(graph_load, path_edges);
}

TEST_P(RoutingProperties, EverySegmentConnectsItsEndpointsOnM1) {
  const Design d = random_instance(GetParam());
  const GlobalRouteResult result = global_route(d);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const auto pairs = decompose_net(d, n);
    ASSERT_EQ(pairs.size(), result.routes[n].segments.size());
    for (std::size_t s = 0; s < pairs.size(); ++s) {
      const RoutePath& path = result.routes[n].segments[s];
      // Parity check: each (metal, cell) node must have even degree except
      // the two endpoints at M1.
      std::map<std::pair<int, std::size_t>, int> degree;
      for (const EdgeId e : path.edges) {
        const auto [a, b] = result.graph.edge_cells(e);
        const int m = result.graph.edge_metal(e);
        ++degree[{m, a}];
        ++degree[{m, b}];
      }
      for (const auto& [via, cell] : path.vias) {
        ++degree[{via, cell}];
        ++degree[{via + 1, cell}];
      }
      ++degree[{0, pairs[s].first}];
      ++degree[{0, pairs[s].second}];
      for (const auto& [node, deg] : degree) {
        EXPECT_EQ(deg % 2, 0) << "net " << n << " seg " << s;
      }
    }
  }
}

TEST_P(RoutingProperties, MazeNeverCostsMoreThanPattern) {
  const Design d = random_instance(GetParam());
  GridGraph g(d);
  MazeRouter maze(g);
  const RouteCostParams params;
  Rng rng(GetParam().seed + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t a = rng.index(g.num_cells());
    const std::size_t b = rng.index(g.num_cells());
    if (a == b) continue;
    const RoutePath pattern = pattern_route(g, a, b, params);
    const MazeResult mr = maze.route(a, b, params);
    ASSERT_TRUE(mr.found);
    EXPECT_LE(mr.cost, path_cost(g, pattern, params) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingProperties,
    ::testing::Values(RouteCase{5, 5, 20, 1}, RouteCase{8, 3, 40, 2},
                      RouteCase{3, 9, 30, 3}, RouteCase{12, 12, 120, 4},
                      RouteCase{2, 2, 8, 5}));

// --------------------------------------------------------------- TreeSHAP

class TreeShapProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeShapProperties, MatchesBruteForceAndIsAdditive) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Dataset d(5);
  for (int i = 0; i < 250; ++i) {
    std::vector<float> x(5);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double score =
        x[0] + 0.7 * x[1] * (x[2] > 0.5 ? 1.0 : -1.0) + 0.4 * rng.normal();
    d.append_row(x, score > 0.8 ? 1 : 0, 0);
  }
  DecisionTreeOptions options;
  options.max_depth = 6;
  options.seed = seed;
  DecisionTree tree;
  tree.fit(d, options);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> x(5);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const auto fast = TreeShapExplainer::tree_shap_values(tree, x);
    const auto slow = brute_force_shap_values(tree, x);
    double total = tree.expected_value();
    for (std::size_t f = 0; f < 5; ++f) {
      EXPECT_NEAR(fast[f], slow[f], 1e-9);
      total += fast[f];
    }
    EXPECT_NEAR(total, tree.predict_proba(x), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TreeShapProperties,
                         ::testing::Range<std::uint64_t>(100, 112));

// ----------------------------------------------------------------- metrics

struct MetricsCase {
  std::size_t n;
  double positive_rate;
  std::uint64_t seed;
};

class MetricsProperties : public ::testing::TestWithParam<MetricsCase> {};

TEST_P(MetricsProperties, RangesOrderingAndBudget) {
  const MetricsCase c = GetParam();
  Rng rng(c.seed);
  std::vector<double> scores(c.n);
  std::vector<std::uint8_t> labels(c.n);
  std::size_t positives = 0;
  for (std::size_t i = 0; i < c.n; ++i) {
    labels[i] = rng.bernoulli(c.positive_rate);
    positives += labels[i];
    // Mildly informative scores.
    scores[i] = 0.3 * labels[i] + rng.uniform();
  }
  if (positives == 0 || positives == c.n) GTEST_SKIP();

  const double pr = auprc(scores, labels);
  const double roc = auroc(scores, labels);
  EXPECT_GE(pr, 0.0);
  EXPECT_LE(pr, 1.0);
  EXPECT_GE(roc, 0.0);
  EXPECT_LE(roc, 1.0);
  // Informative scores beat chance on both metrics.
  EXPECT_GT(roc, 0.5);
  EXPECT_GT(pr, static_cast<double>(positives) / static_cast<double>(c.n) - 0.02);

  const OperatingPoint op = operating_point_at_fpr(scores, labels, 0.01);
  if (!std::isnan(op.fpr)) {
    EXPECT_LE(op.fpr, 0.01 + 1e-12);
    EXPECT_GE(op.tpr, 0.0);
    EXPECT_LE(op.tpr, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsProperties,
    ::testing::Values(MetricsCase{200, 0.5, 11}, MetricsCase{2000, 0.05, 12},
                      MetricsCase{5000, 0.01, 13}, MetricsCase{300, 0.2, 14},
                      MetricsCase{10000, 0.002, 15}));

// ----------------------------------------------------------------- binning

class BinningProperties : public ::testing::TestWithParam<int> {};

TEST_P(BinningProperties, BinCodesMonotoneAndThresholdsConsistent) {
  const int max_bins = GetParam();
  Rng rng(21);
  Dataset d(2);
  for (int i = 0; i < 700; ++i) {
    d.append_row(std::vector<float>{static_cast<float>(rng.normal()),
                                    static_cast<float>(rng.index(5))},
                 0, 0);
  }
  const BinnedMatrix binned(d, max_bins);
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_LE(binned.n_bins(f), max_bins);
    // Every split threshold must separate the bins it claims to separate.
    for (int b = 0; b + 1 < binned.n_bins(f); ++b) {
      const float cut = binned.split_threshold(f, b);
      for (std::size_t r = 0; r < d.n_rows(); ++r) {
        if (d.row(r)[f] <= cut) {
          EXPECT_LE(binned.bin(r, f), b) << "f" << f << " bin " << b;
        } else {
          EXPECT_GT(binned.bin(r, f), b) << "f" << f << " bin " << b;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinningProperties,
                         ::testing::Values(2, 4, 16, 64, 256));

}  // namespace
}  // namespace drcshap
