#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace drcshap {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, IndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(19);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, PoissonMean) {
  Rng rng(31);
  constexpr int kN = 50000;
  for (const double lambda : {0.5, 3.0, 40.0}) {
    double total = 0.0;
    for (int i = 0; i < kN; ++i) {
      total += static_cast<double>(rng.poisson(lambda));
    }
    EXPECT_NEAR(total / kN, lambda, lambda * 0.05 + 0.02) << "lambda " << lambda;
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(47);
  const auto sample = rng.sample_without_replacement(5, 5);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(47);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, BootstrapIndicesInRangeAndRepeats) {
  Rng rng(53);
  const auto idx = rng.bootstrap_indices(1000);
  EXPECT_EQ(idx.size(), 1000u);
  for (const std::size_t i : idx) EXPECT_LT(i, 1000u);
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  // Bootstrap covers ~63% of the population on average.
  EXPECT_LT(unique.size(), 750u);
  EXPECT_GT(unique.size(), 500u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(59);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace drcshap
