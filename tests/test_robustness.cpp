// Robustness layer: crash-safe artifact I/O, checkpoint/resume for the
// experiment loops, and the deterministic fault-injection harness. The
// Recovery.* and Quarantine.* tests need failpoints compiled in
// (-DDRCSHAP_FAILPOINTS=ON) and self-skip otherwise; CI runs them in a
// dedicated fault-injection job and under the sanitizer legs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/random_forest.hpp"
#include "ml/cross_validation.hpp"
#include "ml/experiment_state.hpp"
#include "ml/grid_search.hpp"
#include "obs/registry.hpp"
#include "util/artifact.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             ("drcshap_rob_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------------ Artifact

TEST(Artifact, FrameRoundTripBinaryPayload) {
  std::string payload = "line1\nline2\n";
  payload.push_back('\0');
  payload += "\nFNV1A decoy trailer\n";  // payload may contain trailer text
  const std::string framed = frame_artifact("demo", payload);
  const StatusOr<std::string> back = unframe_artifact(framed, "demo");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), payload);
}

TEST(Artifact, UnframeRejectsWrongKind) {
  const std::string framed = frame_artifact("forest", "payload");
  const auto back = unframe_artifact(framed, "def-lite");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
  // The message names both kinds so the error is actionable.
  EXPECT_NE(back.status().message().find("forest"), std::string::npos);
  EXPECT_NE(back.status().message().find("def-lite"), std::string::npos);
}

TEST(Artifact, UnframeRejectsEveryTruncationAndBitFlip) {
  std::string payload;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    payload.push_back(static_cast<char>(rng.uniform_int(0, 255)));
  }
  const std::string framed = frame_artifact("blob", payload);
  for (std::size_t len = 0; len < framed.size(); len += 97) {
    const auto got = unframe_artifact(framed.substr(0, len), "blob");
    EXPECT_FALSE(got.ok()) << "truncation to " << len << " bytes";
    EXPECT_EQ(got.status().code(), StatusCode::kCorrupt);
  }
  for (std::size_t i = 0; i < framed.size(); i += 97) {
    std::string flipped = framed;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x04);
    const auto got = unframe_artifact(flipped, "blob");
    EXPECT_FALSE(got.ok()) << "bit flip at byte " << i;
  }
}

TEST(Artifact, WriteReadFileAtomicRoundTrip) {
  const TempDir dir("atomic");
  const std::string path = dir.path() + "/report.json";
  ASSERT_TRUE(write_file_atomic(path, "{\"v\":1}").ok());
  const auto first = read_file(path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), "{\"v\":1}");
  // Overwrite is atomic too: afterwards only the new content exists and no
  // temp files are left behind.
  ASSERT_TRUE(write_file_atomic(path, "{\"v\":2}").ok());
  EXPECT_EQ(read_file(path).value(), "{\"v\":2}");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  const auto missing = read_file(dir.path() + "/nope.json");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Artifact, StatusOrThrowsTypedErrorOnValue) {
  const StatusOr<std::string> err =
      Status(StatusCode::kStaleConfig, "old digest");
  ASSERT_FALSE(err.ok());
  try {
    (void)err.value();
    FAIL() << "value() on error must throw";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.code(), StatusCode::kStaleConfig);
    EXPECT_NE(std::string(e.what()).find("old digest"), std::string::npos);
  }
  const StatusOr<std::string> fine = std::string("v");
  EXPECT_TRUE(fine.ok());
  EXPECT_EQ(fine.value(), "v");
}

TEST(Artifact, DigestBuilderSeparatesFields) {
  const auto d1 = DigestBuilder().add("ab").add("c").value();
  const auto d2 = DigestBuilder().add("a").add("bc").value();
  EXPECT_NE(d1, d2);
  const auto d3 = DigestBuilder().add(std::uint64_t{7}).value();
  const auto d4 = DigestBuilder().add(std::int64_t{7}).value();
  EXPECT_NE(d3, d4);  // type tags keep same-bytes fields apart
  EXPECT_EQ(digest_hex(d1).size(), 16u);
  EXPECT_EQ(digest_hex(0), "0000000000000000");
}

// ---------------------------------------------------------------- Checkpoint

TEST(Checkpoint, DisabledStoreMissesAndNoOps) {
  const CheckpointStore off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.load("unit").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(off.store("unit", "payload").ok());
  EXPECT_FALSE(off.with_salt("x").enabled());
}

TEST(Checkpoint, StoreLoadRoundTrip) {
  const TempDir dir("ckpt");
  const CheckpointStore store(dir.path(), 0xabcdefULL);
  EXPECT_EQ(store.load("design0").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.store("design0", "bytes\x01\x02").ok());
  const auto back = store.load("design0");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), "bytes\x01\x02");
  EXPECT_TRUE(fs::exists(store.unit_path("design0")));
}

TEST(Checkpoint, RejectsBadUnitNames) {
  const TempDir dir("ckpt_names");
  const CheckpointStore store(dir.path(), 1);
  for (const char* bad : {"", "../escape", "a/b", "sp ace"}) {
    EXPECT_EQ(store.load(bad).status().code(), StatusCode::kInvalid) << bad;
    EXPECT_EQ(store.store(bad, "x").code(), StatusCode::kInvalid) << bad;
  }
}

TEST(Checkpoint, StaleConfigDetected) {
  const TempDir dir("ckpt_stale");
  const CheckpointStore writer(dir.path(), 1);
  ASSERT_TRUE(writer.store("fold-0", "score").ok());
  const CheckpointStore reader(dir.path(), 2);  // different config/seed
  const auto got = reader.load("fold-0");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kStaleConfig);
  // The original writer still reads it back.
  EXPECT_TRUE(writer.load("fold-0").ok());
}

TEST(Checkpoint, CorruptUnitReported) {
  const TempDir dir("ckpt_corrupt");
  const CheckpointStore store(dir.path(), 3);
  ASSERT_TRUE(store.store("unit", "payload").ok());
  const std::string path = store.unit_path("unit");
  // Garbage replacing the artifact.
  spit(path, "not an artifact at all");
  EXPECT_EQ(store.load("unit").status().code(), StatusCode::kCorrupt);
  // A torn (truncated) artifact.
  ASSERT_TRUE(store.store("unit", "payload").ok());
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 5));
  EXPECT_EQ(store.load("unit").status().code(), StatusCode::kCorrupt);
}

TEST(Checkpoint, WithSaltSeparatesDigests) {
  const TempDir dir("ckpt_salt");
  const CheckpointStore base(dir.path(), 9);
  const CheckpointStore salted = base.with_salt("{trees=100}");
  EXPECT_NE(salted.config_digest(), base.config_digest());
  ASSERT_TRUE(base.store("unit", "base payload").ok());
  // The salted store sees the base store's unit as stale, not as its own.
  EXPECT_EQ(salted.load("unit").status().code(), StatusCode::kStaleConfig);
}

TEST(Checkpoint, DatasetShardRoundTripIsBitExact) {
  Dataset d(3);
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    d.append_row(
        std::vector<float>{static_cast<float>(rng.normal(0.0, 1.0)),
                           std::numeric_limits<float>::denorm_min(),
                           -0.0f},
        i % 2, i % 5);
  }
  const auto back = decode_dataset_shard(encode_dataset_shard(d));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  const Dataset& out = back.value();
  ASSERT_EQ(out.n_rows(), d.n_rows());
  EXPECT_EQ(out.features_flat(), d.features_flat());
  EXPECT_EQ(out.labels(), d.labels());
  EXPECT_EQ(out.groups(), d.groups());
  EXPECT_EQ(dataset_digest(out), dataset_digest(d));
}

TEST(Checkpoint, DatasetShardRejectsDamage) {
  Dataset d(2);
  d.append_row(std::vector<float>{1.0f, 2.0f}, 1, 0);
  const std::string good = encode_dataset_shard(d);
  EXPECT_FALSE(decode_dataset_shard("no header").ok());
  EXPECT_FALSE(decode_dataset_shard("SHARD 2 9999\n").ok());  // size mismatch
  // Label byte out of range.
  std::string bad_label = good;
  bad_label[bad_label.size() - sizeof(std::int32_t) - 1] = 7;
  EXPECT_FALSE(decode_dataset_shard(bad_label).ok());
  // A feature smashed to NaN.
  std::string bad_float = good;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bad_float.data() + good.find('\n') + 1, &nan, sizeof(nan));
  EXPECT_FALSE(decode_dataset_shard(bad_float).ok());
}

TEST(Checkpoint, ScoreRoundTripIsBitExact) {
  for (const double v : {0.3, -0.0, std::numeric_limits<double>::denorm_min(),
                         0.12345678901234567, 1.0}) {
    double score = 99.0;
    bool scored = false;
    ASSERT_TRUE(decode_score(encode_score(v, true), &score, &scored).ok());
    EXPECT_TRUE(scored);
    std::uint64_t in_bits = 0, out_bits = 0;
    std::memcpy(&in_bits, &v, sizeof(v));
    std::memcpy(&out_bits, &score, sizeof(score));
    EXPECT_EQ(in_bits, out_bits);
  }
  double score = 99.0;
  bool scored = true;
  ASSERT_TRUE(decode_score(encode_score(0.0, false), &score, &scored).ok());
  EXPECT_FALSE(scored);
  EXPECT_FALSE(decode_score("SCORE zz 1", &score, &scored).ok());
  EXPECT_FALSE(decode_score("bogus", &score, &scored).ok());
}

// -------------------------------------------------------- checkpoint resume

PipelineOptions tiny_pipeline() {
  PipelineOptions options;
  options.generator.scale = 16.0;
  return options;
}

std::vector<BenchmarkSpec> three_designs() {
  return {suite_spec("fft_1"), suite_spec("fft_2"), suite_spec("des_perf_1")};
}

std::uint64_t suite_config_digest(const PipelineOptions& options) {
  // Enough of the config for these tests: scale + the spec list is fixed.
  return DigestBuilder()
      .add("suite-build")
      .add(options.generator.scale)
      .value();
}

TEST(Resume, SuiteBuildReusesCommittedShards) {
  const PipelineOptions options = tiny_pipeline();
  const auto specs = three_designs();
  const Dataset uninterrupted = build_suite_dataset(specs, options, nullptr, 1);

  const TempDir dir("suite_resume");
  const CheckpointStore store(dir.path(), suite_config_digest(options));
  SuiteBuildControl control;
  control.checkpoint = &store;

  std::size_t fresh = 0;
  const auto count_fresh = [&](const DesignRun&) { ++fresh; };
  const Dataset first =
      build_suite_dataset(specs, options, control, count_fresh, 1);
  EXPECT_EQ(fresh, specs.size());
  EXPECT_EQ(dataset_digest(first), dataset_digest(uninterrupted));

  // Second run: everything is resumed from shards, nothing recomputed.
  fresh = 0;
  const Dataset resumed =
      build_suite_dataset(specs, options, control, count_fresh, 1);
  EXPECT_EQ(fresh, 0u);
  EXPECT_EQ(resumed.features_flat(), uninterrupted.features_flat());
  EXPECT_EQ(resumed.labels(), uninterrupted.labels());
  EXPECT_EQ(resumed.groups(), uninterrupted.groups());

  // Corrupt one shard: only that design is recomputed, result unchanged.
  const std::string victim = store.unit_path("design1-fft_2");
  ASSERT_TRUE(fs::exists(victim));
  spit(victim, "garbage");
  fresh = 0;
  const Dataset healed =
      build_suite_dataset(specs, options, control, count_fresh, 1);
  EXPECT_EQ(fresh, 1u);
  EXPECT_EQ(dataset_digest(healed), dataset_digest(uninterrupted));

  // A store with a different config digest reuses nothing.
  const CheckpointStore other(dir.path(), 0xdeadULL);
  SuiteBuildControl other_control;
  other_control.checkpoint = &other;
  fresh = 0;
  build_suite_dataset(specs, options, other_control, count_fresh, 1);
  EXPECT_EQ(fresh, specs.size());
}

/// x0 correlates with the label; `n_groups` groups of 120 rows.
Dataset grouped_data(int n_groups = 3, std::uint64_t seed = 4242) {
  Dataset d(3);
  Rng rng(seed);
  for (int g = 0; g < n_groups; ++g) {
    for (int i = 0; i < 120; ++i) {
      const int label = rng.bernoulli(0.25) ? 1 : 0;
      const float x0 = static_cast<float>(label * 2.0 + rng.normal(0.0, 0.8));
      const float x1 = static_cast<float>(rng.normal(0.0, 1.0));
      d.append_row(std::vector<float>{x0, x1, static_cast<float>(g)}, label,
                   g);
    }
  }
  return d;
}

ModelFactory small_forest_factory() {
  return [] {
    RandomForestOptions o;
    o.n_trees = 10;
    o.max_depth = 5;
    return std::make_unique<RandomForestClassifier>(o);
  };
}

TEST(Resume, CvResumesBitIdentical) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2};
  const auto uninterrupted =
      grouped_cross_validate(small_forest_factory(), data, groups, 1);

  const TempDir dir("cv_resume");
  const CheckpointStore store(dir.path(), dataset_digest(data));
  CvControl control;
  control.checkpoint = &store;
  const auto first = grouped_cross_validate(small_forest_factory(), data,
                                            groups, control, 1);
  EXPECT_EQ(first.fold_auprc, uninterrupted.fold_auprc);
  EXPECT_EQ(first.mean_auprc, uninterrupted.mean_auprc);

  // All folds resumed: the factory must never be called again.
  const ModelFactory forbidden = []() -> std::unique_ptr<BinaryClassifier> {
    throw std::logic_error("resumed CV must not refit");
  };
  const auto resumed =
      grouped_cross_validate(forbidden, data, groups, control, 1);
  EXPECT_EQ(resumed.fold_auprc, uninterrupted.fold_auprc);
  EXPECT_EQ(resumed.mean_auprc, uninterrupted.mean_auprc);

  // Corrupt one fold: exactly that fold is recomputed, bit-identically.
  spit(store.unit_path("fold-1"), "garbage");
  const auto healed = grouped_cross_validate(small_forest_factory(), data,
                                             groups, control, 1);
  EXPECT_EQ(healed.fold_auprc, uninterrupted.fold_auprc);
  EXPECT_EQ(healed.mean_auprc, uninterrupted.mean_auprc);
}

ParamModelFactory grid_factory() {
  return [](const ParamSet& p) {
    RandomForestOptions o;
    o.n_trees = 8;
    o.max_depth = static_cast<int>(p.at("depth"));
    return std::make_unique<RandomForestClassifier>(o);
  };
}

TEST(Resume, GridSearchResumesBitIdentical) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2};
  const std::map<std::string, std::vector<double>> grid{{"depth", {3.0, 5.0}}};
  const auto uninterrupted = grid_search(grid_factory(), data, groups, grid, 1);

  const TempDir dir("grid_resume");
  const CheckpointStore store(dir.path(), dataset_digest(data));
  const auto first =
      grid_search(grid_factory(), data, groups, grid, 1, &store);
  EXPECT_EQ(first.best_params, uninterrupted.best_params);
  EXPECT_EQ(first.best_score, uninterrupted.best_score);

  const ParamModelFactory forbidden =
      [](const ParamSet&) -> std::unique_ptr<BinaryClassifier> {
    throw std::logic_error("resumed grid search must not refit");
  };
  const auto resumed = grid_search(forbidden, data, groups, grid, 1, &store);
  EXPECT_EQ(resumed.best_params, uninterrupted.best_params);
  EXPECT_EQ(resumed.best_score, uninterrupted.best_score);
  ASSERT_EQ(resumed.evaluations.size(), uninterrupted.evaluations.size());
  for (std::size_t c = 0; c < resumed.evaluations.size(); ++c) {
    EXPECT_EQ(resumed.evaluations[c].second,
              uninterrupted.evaluations[c].second);
  }
}

// ------------------------------------------------------------- fault harness

#define SKIP_WITHOUT_FAILPOINTS()                                   \
  do {                                                              \
    if (!kFailpointsCompiled) {                                     \
      GTEST_SKIP() << "built without -DDRCSHAP_FAILPOINTS=ON";      \
    }                                                               \
  } while (0)

TEST(Failpoints, SpecParsingRejectsMalformedEntries) {
  SKIP_WITHOUT_FAILPOINTS();
  EXPECT_THROW(failpoints_configure("nonsense"), std::invalid_argument);
  EXPECT_THROW(failpoints_configure("x=zap@1"), std::invalid_argument);
  EXPECT_THROW(failpoints_configure("x=fail@0"), std::invalid_argument);
  EXPECT_THROW(failpoints_configure("x=fail@abc"), std::invalid_argument);
  failpoints_clear();
}

TEST(Failpoints, FailAtCountFiresFromNthHitOnward) {
  SKIP_WITHOUT_FAILPOINTS();
  const ScopedFailpoints armed("io.commit=fail@3");
  EXPECT_NO_THROW(failpoint_hit("io.commit"));
  EXPECT_NO_THROW(failpoint_hit("io.commit"));
  // Models a process that dies and stays dead: the 3rd hit and every later
  // one fail.
  EXPECT_THROW(failpoint_hit("io.commit"), FailpointError);
  EXPECT_THROW(failpoint_hit("io.commit"), FailpointError);
  EXPECT_EQ(failpoint_hits("io.commit"), 4u);
  EXPECT_NO_THROW(failpoint_hit("other.site"));  // unrelated names pass
}

TEST(Failpoints, ThrowOnKeyPoisonsOnlyThatKey) {
  SKIP_WITHOUT_FAILPOINTS();
  const ScopedFailpoints armed("loop.unit=throw@fft_2");
  EXPECT_NO_THROW(failpoint_hit("loop.unit", "fft_1"));
  try {
    failpoint_hit("loop.unit", "fft_2");
    FAIL() << "keyed failpoint must fire";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.name(), "loop.unit");
  }
  EXPECT_NO_THROW(failpoint_hit("loop.unit", "des_perf_1"));
  EXPECT_NO_THROW(failpoint_hit("loop.unit"));  // unkeyed hit never matches
}

TEST(Failpoints, AtomicCommitKeepsOldContentOnCrash) {
  SKIP_WITHOUT_FAILPOINTS();
  const TempDir dir("atomic_crash");
  const std::string path = dir.path() + "/model.rf";
  ASSERT_TRUE(write_artifact_atomic(path, "demo", "version 1").ok());
  // Crash the rename of the overwrite: the target keeps version 1 and no
  // temp file survives.
  {
    const ScopedFailpoints armed("artifact.rename=throw@model.rf");
    EXPECT_THROW(
        (void)write_artifact_atomic(path, "demo", "version 2").ok(),
        FailpointError);
  }
  EXPECT_EQ(read_artifact(path, "demo").value(), "version 1");
  // Crash before the temp write: same story.
  {
    const ScopedFailpoints armed("artifact.write_temp=throw@model.rf");
    EXPECT_THROW(
        (void)write_artifact_atomic(path, "demo", "version 3").ok(),
        FailpointError);
  }
  EXPECT_EQ(read_artifact(path, "demo").value(), "version 1");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no .tmp litter
}

TEST(Failpoints, PoolChunkCrashPropagatesWithSiblingsJoined) {
  SKIP_WITHOUT_FAILPOINTS();
  const ScopedFailpoints armed("pool.chunk=fail@2");
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  EXPECT_THROW(
      pool.parallel_for(512,
                        [&](std::size_t i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }),
      FailpointError);
  // Joined-before-rethrow means touching `hits` here is safe; destroying it
  // on return would be a use-after-free if a sibling strip still ran.
  for (const auto& h : hits) EXPECT_LE(h.load(), 1);
}

// Counts how many times `name` was evaluated during `scenario()` by arming
// a sentinel rule that never fires (counting requires the armed state).
template <typename Fn>
std::uint64_t count_commit_points(std::string_view name, Fn&& scenario) {
  const ScopedFailpoints armed("never.fires=fail@18446744073709551615");
  scenario();
  return failpoint_hits(name);
}

TEST(Recovery, SuiteBuildKillAtEveryCommitPoint) {
  SKIP_WITHOUT_FAILPOINTS();
  const PipelineOptions options = tiny_pipeline();
  const auto specs = three_designs();
  const std::uint64_t expected =
      dataset_digest(build_suite_dataset(specs, options, nullptr, 1));

  const auto build_with = [&](const CheckpointStore& store,
                              std::size_t n_threads) {
    SuiteBuildControl control;
    control.checkpoint = &store;
    return build_suite_dataset(specs, options, control, nullptr, n_threads);
  };

  // Size the kill schedule: how many commit points does a fresh build pass?
  std::uint64_t commits = 0;
  {
    const TempDir dir("sweep_count");
    const CheckpointStore store(dir.path(), suite_config_digest(options));
    commits = count_commit_points("ckpt.store",
                                  [&] { (void)build_with(store, 1); });
  }
  ASSERT_EQ(commits, specs.size());

  // Kill the build at every commit point, both just before the shard commits
  // ("ckpt.store") and just after ("ckpt.committed"), then resume with
  // failpoints disarmed (the "restarted process") and require the resumed
  // dataset to match the uninterrupted one bit for bit. Thread counts
  // alternate between serial and the shared pool.
  for (const char* site : {"ckpt.store", "ckpt.committed"}) {
    for (std::uint64_t k = 1; k <= commits; ++k) {
      const TempDir dir("sweep");
      const CheckpointStore store(dir.path(), suite_config_digest(options));
      const std::size_t n_threads = (k % 2 == 0) ? 0 : 1;
      {
        const ScopedFailpoints armed(std::string(site) + "=fail@" +
                                     std::to_string(k));
        EXPECT_THROW((void)build_with(store, n_threads), FailpointError)
            << site << " kill " << k;
      }
      const Dataset resumed = build_with(store, n_threads);
      EXPECT_EQ(dataset_digest(resumed), expected)
          << "resume after " << site << " kill " << k
          << " (n_threads=" << n_threads << ")";
    }
  }
}

TEST(Recovery, CvKillAtEveryCommitPoint) {
  SKIP_WITHOUT_FAILPOINTS();
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2};
  const auto uninterrupted =
      grouped_cross_validate(small_forest_factory(), data, groups, 1);

  const auto cv_with = [&](const CheckpointStore& store) {
    CvControl control;
    control.checkpoint = &store;
    return grouped_cross_validate(small_forest_factory(), data, groups,
                                  control, 1);
  };
  std::uint64_t commits = 0;
  {
    const TempDir dir("cv_count");
    const CheckpointStore store(dir.path(), dataset_digest(data));
    commits =
        count_commit_points("ckpt.store", [&] { (void)cv_with(store); });
  }
  ASSERT_EQ(commits, groups.size());

  for (std::uint64_t k = 1; k <= commits; ++k) {
    const TempDir dir("cv_sweep");
    const CheckpointStore store(dir.path(), dataset_digest(data));
    {
      const ScopedFailpoints armed("ckpt.store=fail@" + std::to_string(k));
      EXPECT_THROW((void)cv_with(store), FailpointError) << "kill " << k;
    }
    const auto resumed = cv_with(store);
    EXPECT_EQ(resumed.fold_auprc, uninterrupted.fold_auprc) << "kill " << k;
    EXPECT_EQ(resumed.mean_auprc, uninterrupted.mean_auprc) << "kill " << k;
  }
}

TEST(Recovery, GridSearchKillAtEveryCommitPoint) {
  SKIP_WITHOUT_FAILPOINTS();
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2};
  const std::map<std::string, std::vector<double>> grid{{"depth", {3.0, 5.0}}};
  const auto uninterrupted = grid_search(grid_factory(), data, groups, grid, 1);

  std::uint64_t commits = 0;
  {
    const TempDir dir("grid_count");
    const CheckpointStore store(dir.path(), dataset_digest(data));
    commits = count_commit_points("ckpt.store", [&] {
      (void)grid_search(grid_factory(), data, groups, grid, 1, &store);
    });
  }
  // 2 candidates x (3 folds + 1 candidate score).
  ASSERT_EQ(commits, 8u);

  for (std::uint64_t k = 1; k <= commits; ++k) {
    const TempDir dir("grid_sweep");
    const CheckpointStore store(dir.path(), dataset_digest(data));
    {
      const ScopedFailpoints armed("ckpt.store=fail@" + std::to_string(k));
      EXPECT_THROW(
          (void)grid_search(grid_factory(), data, groups, grid, 1, &store),
          FailpointError)
          << "kill " << k;
    }
    const auto resumed =
        grid_search(grid_factory(), data, groups, grid, 1, &store);
    EXPECT_EQ(resumed.best_params, uninterrupted.best_params) << "kill " << k;
    EXPECT_EQ(resumed.best_score, uninterrupted.best_score) << "kill " << k;
  }
}

TEST(Quarantine, PoisonedDesignIsSkippedAndRecorded) {
  SKIP_WITHOUT_FAILPOINTS();
  const PipelineOptions options = tiny_pipeline();
  const auto specs = three_designs();
  const Dataset full = build_suite_dataset(specs, options, nullptr, 1);

  if (obs::kEnabled) obs::reset();
  const ScopedFailpoints armed("pipeline.design=throw@fft_2");
  SuiteBuildControl control;
  control.quarantine_failures = true;
  const Dataset partial =
      build_suite_dataset(specs, options, control, nullptr, 1);

  // fft_2 is spec index 1, so its rows carry group 1: the quarantined build
  // equals the full build minus that group.
  const std::vector<int> gone{1};
  const Dataset reference = full.subset(full.rows_not_in_groups(gone));
  EXPECT_EQ(partial.features_flat(), reference.features_flat());
  EXPECT_EQ(partial.labels(), reference.labels());
  EXPECT_EQ(partial.groups(), reference.groups());

  if (obs::kEnabled) {
    const obs::Snapshot snap = obs::snapshot();
    ASSERT_TRUE(snap.counters.count("pipeline/designs_quarantined"));
    EXPECT_EQ(snap.counters.at("pipeline/designs_quarantined"), 1u);
    ASSERT_TRUE(snap.notes.count("quarantine/fft_2"));
    EXPECT_NE(snap.notes.at("quarantine/fft_2").find("pipeline.design"),
              std::string::npos);
  }
}

TEST(Quarantine, OffMeansFirstErrorPropagates) {
  SKIP_WITHOUT_FAILPOINTS();
  const ScopedFailpoints armed("pipeline.design=throw@fft_1");
  EXPECT_THROW((void)build_suite_dataset(three_designs(), tiny_pipeline(),
                                         nullptr, 1),
               FailpointError);
}

}  // namespace
}  // namespace drcshap
