#include <gtest/gtest.h>

#include <map>

#include "route/global_router.hpp"
#include "route/maze_router.hpp"
#include "route/pattern_router.hpp"

namespace drcshap {
namespace {

Design empty_design(std::size_t nx = 6, std::size_t ny = 6) {
  return Design("route_toy", {0, 0, 10.0 * nx, 10.0 * ny}, nx, ny);
}

/// Verifies a path forms a connected M1-to-M1 walk from cell a to cell b:
/// replays edges/vias as node-degree increments and checks Euler-path
/// endpoints. (Sufficient for the straight/L/maze paths produced here.)
void expect_path_connects(const GridGraph& g, const RoutePath& path,
                          std::size_t a, std::size_t b) {
  std::map<std::pair<int, std::size_t>, int> degree;  // (metal, cell) -> deg
  for (const EdgeId e : path.edges) {
    const int m = g.edge_metal(e);
    const auto [lo, hi] = g.edge_cells(e);
    ++degree[{m, lo}];
    ++degree[{m, hi}];
  }
  for (const auto& [via, cell] : path.vias) {
    ++degree[{via, cell}];
    ++degree[{via + 1, cell}];
  }
  ++degree[{0, a}];
  ++degree[{0, b}];
  for (const auto& [node, deg] : degree) {
    EXPECT_EQ(deg % 2, 0) << "odd degree at metal " << node.first << " cell "
                          << node.second;
  }
}

// -------------------------------------------------------------- pattern

TEST(PatternRouter, SameCellIsEmpty) {
  const GridGraph g(empty_design());
  const RouteCostParams params;
  EXPECT_TRUE(pattern_route(g, 3, 3, params).empty());
}

TEST(PatternRouter, StraightHorizontal) {
  const GridGraph g(empty_design());
  const RouteCostParams params;
  const RoutePath p = pattern_route(g, 0, 3, params);
  EXPECT_EQ(p.edges.size(), 3u);
  for (const EdgeId e : p.edges) {
    EXPECT_TRUE(Technology::is_horizontal(g.edge_metal(e)));
  }
  expect_path_connects(g, p, 0, 3);
}

TEST(PatternRouter, StraightVerticalUsesVerticalLayer) {
  const GridGraph g(empty_design());
  const RouteCostParams params;
  const RoutePath p = pattern_route(g, 0, 12, params);  // two rows up
  EXPECT_EQ(p.edges.size(), 2u);
  for (const EdgeId e : p.edges) {
    EXPECT_FALSE(Technology::is_horizontal(g.edge_metal(e)));
  }
  expect_path_connects(g, p, 0, 12);
}

TEST(PatternRouter, LShapeLengthAndConnectivity) {
  const GridGraph g(empty_design());
  const RouteCostParams params;
  const std::size_t a = 0, b = 3 + 4 * 6;  // (0,0) -> (3,4)
  const RoutePath p = pattern_route(g, a, b, params);
  EXPECT_EQ(p.edges.size(), 7u);  // manhattan distance
  expect_path_connects(g, p, a, b);
  EXPECT_FALSE(p.vias.empty());  // layer changes require vias
}

TEST(PatternRouter, AvoidsCongestedLayer) {
  Design d = empty_design();
  GridGraph g(d);
  const RouteCostParams params;
  // Saturate M1 along row 0 so the router should prefer M3/M5.
  for (std::size_t c = 0; c + 1 < 6; ++c) {
    const auto e = g.edge(0, c, Dir::kEast);
    g.add_edge_load(*e, g.edge_capacity(*e) + 5);
  }
  const RoutePath p = pattern_route(g, 0, 5, params);
  for (const EdgeId e : p.edges) {
    EXPECT_NE(g.edge_metal(e), 0) << "went through saturated M1";
  }
}

TEST(PatternRouter, CostMatchesPathCost) {
  const GridGraph g(empty_design());
  const RouteCostParams params;
  const RoutePath p = pattern_route(g, 0, 8, params);
  EXPECT_GT(path_cost(g, p, params), 0.0);
}

TEST(PatternRouter, ViaStackHelper) {
  RoutePath p;
  append_via_stack(p, 0, 3, 7);
  ASSERT_EQ(p.vias.size(), 3u);
  EXPECT_EQ(p.vias[0], (std::pair<int, std::size_t>{0, 7}));
  EXPECT_EQ(p.vias[2], (std::pair<int, std::size_t>{2, 7}));
  // Descending order covers the same cut layers.
  RoutePath q;
  append_via_stack(q, 3, 0, 7);
  EXPECT_EQ(q.vias.size(), 3u);
}

// ----------------------------------------------------------------- maze

TEST(MazeRouter, FindsPathSameAsManhattanWhenUncongested) {
  const Design d = empty_design();
  GridGraph g(d);
  MazeRouter maze(g);
  const RouteCostParams params;
  const MazeResult r = maze.route(0, 3 + 4 * 6, params);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.edges.size(), 7u);
  expect_path_connects(g, r.path, 0, 3 + 4 * 6);
}

TEST(MazeRouter, SameCellTrivial) {
  const Design d = empty_design();
  GridGraph g(d);
  MazeRouter maze(g);
  const MazeResult r = maze.route(4, 4, {});
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.path.empty());
}

TEST(MazeRouter, DetoursAroundOverflow) {
  const Design d = empty_design();
  GridGraph g(d);
  RouteCostParams params;
  params.overflow_penalty = 1000.0;
  // Block the direct horizontal corridors on row 0 in all H layers between
  // cells 2 and 3.
  for (const int m : {0, 2, 4}) {
    const auto e = g.edge(m, 2, Dir::kEast);
    g.add_edge_load(*e, g.edge_capacity(*e) + 10);
  }
  MazeRouter maze(g);
  const MazeResult r = maze.route(0, 5, params);
  ASSERT_TRUE(r.found);
  // The detour must be longer than the straight 5-edge path.
  EXPECT_GT(r.path.edges.size(), 5u);
  for (const EdgeId e : r.path.edges) {
    EXPECT_EQ(g.edge_overflow(e), 0) << "maze used an overflowed edge";
  }
  expect_path_connects(g, r.path, 0, 5);
}

TEST(MazeRouter, CostIsSumOfStepCosts) {
  const Design d = empty_design();
  GridGraph g(d);
  MazeRouter maze(g);
  const RouteCostParams params;
  const MazeResult r = maze.route(0, 2, params);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.cost, path_cost(g, r.path, params), 1e-9);
}

TEST(MazeRouter, ReusableAcrossCalls) {
  const Design d = empty_design();
  GridGraph g(d);
  MazeRouter maze(g);
  for (std::size_t target = 1; target < 30; ++target) {
    const MazeResult r = maze.route(0, target, {});
    EXPECT_TRUE(r.found) << target;
    expect_path_connects(g, r.path, 0, target);
  }
}

// ----------------------------------------------------------- decomposition

TEST(Decompose, TwoPinNet) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {5, 5}, false, false});
  d.add_pin({kInvalidId, n, {55, 55}, false, false});
  const auto segments = decompose_net(d, n);
  ASSERT_EQ(segments.size(), 1u);
}

TEST(Decompose, LocalNetHasNoSegments) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {5, 5}, false, false});
  d.add_pin({kInvalidId, n, {6, 7}, false, false});
  EXPECT_TRUE(decompose_net(d, n).empty());
}

TEST(Decompose, MstIsSpanning) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  // Pins in 4 distinct g-cells.
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {5, 5}, {55, 5}, {5, 55}, {55, 55}}) {
    d.add_pin({kInvalidId, n, {x, y}, false, false});
  }
  const auto segments = decompose_net(d, n);
  EXPECT_EQ(segments.size(), 3u);  // spanning tree over 4 terminals
}

// -------------------------------------------------------------- global

TEST(GlobalRouter, RoutesEverySegmentAndAccountsLoads) {
  Design d = empty_design();
  // A few nets crossing the die.
  for (int i = 0; i < 10; ++i) {
    const NetId n = d.add_net({"n" + std::to_string(i), {}, false, false});
    d.add_pin({kInvalidId, n, {5.0 + i, 5.0}, false, false});
    d.add_pin({kInvalidId, n, {55.0 - i, 55.0}, false, false});
  }
  const GlobalRouteResult result = global_route(d);
  EXPECT_EQ(result.routes.size(), d.num_nets());
  EXPECT_EQ(result.segments_total, 10u);

  // Replaying all committed paths onto a fresh graph must reproduce the
  // final loads exactly (conservation property).
  GridGraph replay(d);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    std::set<std::size_t> cells;
    for (const PinId p : d.net(n).pins) {
      cells.insert(d.grid().locate(d.pin(p).position));
    }
    for (const std::size_t cell : cells) replay.add_via_load(0, cell, 1);
  }
  for (const NetRoute& route : result.routes) {
    for (const RoutePath& seg : route.segments) commit(replay, seg);
  }
  for (std::size_t e = 0; e < replay.num_edges(); ++e) {
    EXPECT_EQ(replay.edge_load(static_cast<EdgeId>(e)),
              result.graph.edge_load(static_cast<EdgeId>(e)));
  }
}

TEST(GlobalRouter, CongestionSnapshotMatchesGraph) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {5, 5}, false, false});
  d.add_pin({kInvalidId, n, {55, 25}, false, false});
  const GlobalRouteResult result = global_route(d);
  long snapshot_load = 0, graph_load = 0;
  for (int m = 0; m < 5; ++m) {
    for (std::size_t cell = 0; cell < result.graph.num_cells(); ++cell) {
      const auto e = result.graph.edge_low(m, cell);
      if (!e) continue;
      graph_load += result.graph.edge_load(*e);
      const auto [a, b] = result.graph.edge_cells(*e);
      snapshot_load += result.congestion.edge_load(m, a, b);
    }
  }
  EXPECT_EQ(snapshot_load, graph_load);
  EXPECT_GT(graph_load, 0);
}

TEST(GlobalRouter, RipUpReducesOverflowOnHotInstance) {
  // Funnel many nets through one column to force overflow, then check the
  // negotiated rerouting monotonically improves it.
  Design d("hot", {0, 0, 80, 80}, 8, 8);
  for (int i = 0; i < 120; ++i) {
    const NetId n = d.add_net({"n" + std::to_string(i), {}, false, false});
    const double y = 5.0 + (i % 8) * 10.0;
    d.add_pin({kInvalidId, n, {5, y}, false, false});
    d.add_pin({kInvalidId, n, {75, y}, false, false});
  }
  GlobalRouterOptions no_maze;
  no_maze.use_maze = false;
  const long before = global_route(d, no_maze).edge_overflow;

  GlobalRouterOptions with_maze;
  with_maze.max_ripup_iterations = 5;
  const long after = global_route(d, with_maze).edge_overflow;
  EXPECT_LE(after, before);
}

TEST(GlobalRouter, LocalNetsContributePinAccessVias) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {5, 5}, false, false});
  d.add_pin({kInvalidId, n, {7, 7}, false, false});  // same g-cell
  const GlobalRouteResult result = global_route(d);
  EXPECT_EQ(result.congestion.via_load(0, d.grid().locate({5, 5})), 1);
}

TEST(GlobalRouter, DeterministicResult) {
  Design d = empty_design();
  for (int i = 0; i < 20; ++i) {
    const NetId n = d.add_net({"n" + std::to_string(i), {}, false, false});
    d.add_pin({kInvalidId, n, {3.0 + 2 * i, 8.0}, false, false});
    d.add_pin({kInvalidId, n, {50.0, 3.0 + 2 * i}, false, false});
  }
  const GlobalRouteResult a = global_route(d);
  const GlobalRouteResult b = global_route(d);
  EXPECT_EQ(a.edge_overflow, b.edge_overflow);
  for (std::size_t e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_load(static_cast<EdgeId>(e)),
              b.graph.edge_load(static_cast<EdgeId>(e)));
  }
}

}  // namespace
}  // namespace drcshap
