#include "baselines/rusboost.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Heavily imbalanced task (~3% positives) with a learnable signal.
Dataset imbalanced_data(std::size_t n, std::uint64_t seed) {
  Dataset d(5);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(5);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double p = (x[0] > 0.8 && x[1] > 0.5) ? 0.7 : 0.01;
    d.append_row(x, rng.bernoulli(p) ? 1 : 0, 0);
  }
  return d;
}

TEST(RusBoost, LearnsImbalancedSignal) {
  const Dataset train = imbalanced_data(4000, 1);
  const Dataset test = imbalanced_data(4000, 2);
  RusBoostOptions options;
  options.n_rounds = 40;
  RusBoostClassifier model(options);
  model.fit(train);
  const auto scores = model.predict_proba_all(test);
  EXPECT_GT(auroc(scores, test.labels()), 0.85);
  EXPECT_GT(auprc(scores, test.labels()),
            2.0 * static_cast<double>(test.n_positives()) /
                static_cast<double>(test.n_rows()));
}

TEST(RusBoost, BetterRecallThanUnweightedStump) {
  const Dataset train = imbalanced_data(4000, 3);
  RusBoostOptions options;
  options.n_rounds = 30;
  RusBoostClassifier model(options);
  model.fit(train);
  // At threshold 0.5, undersampling-based boosting should catch a decent
  // share of the rare positives.
  const auto scores = model.predict_proba_all(train);
  const ConfusionCounts c = confusion_at_threshold(scores, train.labels(), 0.5);
  EXPECT_GT(c.tpr(), 0.5);
}

TEST(RusBoost, MarginAndProbaConsistent) {
  const Dataset train = imbalanced_data(2000, 4);
  RusBoostClassifier model;
  model.fit(train);
  int checked = 0;
  for (std::size_t i = 0; i + 1 < 40; i += 2) {
    const double m0 = model.margin(train.row(i));
    const double m1 = model.margin(train.row(i + 1));
    if (std::abs(m0 - m1) < 1e-9) continue;
    ++checked;
    // Hard-vote margin and probability must broadly agree in direction.
    const double p0 = model.predict_proba(train.row(i));
    const double p1 = model.predict_proba(train.row(i + 1));
    if (m0 < m1) {
      EXPECT_LT(p0, p1 + 0.25);
    } else {
      EXPECT_GT(p0, p1 - 0.25);
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(RusBoost, UsesRequestedRoundsAtMost) {
  const Dataset train = imbalanced_data(1500, 5);
  RusBoostOptions options;
  options.n_rounds = 15;
  RusBoostClassifier model(options);
  model.fit(train);
  EXPECT_LE(model.n_rounds_used(), 15u);
  EXPECT_GT(model.n_rounds_used(), 0u);
}

TEST(RusBoost, DeterministicForSeed) {
  const Dataset train = imbalanced_data(1500, 6);
  RusBoostClassifier a, b;
  a.fit(train);
  b.fit(train);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(train.row(i)),
                     b.predict_proba(train.row(i)));
  }
}

TEST(RusBoost, ComplexityCountersPositive) {
  const Dataset train = imbalanced_data(1000, 7);
  RusBoostClassifier model;
  model.fit(train);
  EXPECT_GT(model.n_parameters(), 0u);
  EXPECT_GT(model.prediction_ops(), 0u);
}

TEST(RusBoost, ValidatesInput) {
  EXPECT_THROW(RusBoostClassifier(RusBoostOptions{.n_rounds = 0}),
               std::invalid_argument);
  RusBoostClassifier model;
  EXPECT_THROW(model.predict_proba(std::vector<float>{1.0f}),
               std::logic_error);
  Dataset one_class(2);
  one_class.append_row(std::vector<float>{1, 2}, 1, 0);
  EXPECT_THROW(model.fit(one_class), std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
