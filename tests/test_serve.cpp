// Tests for the serving layer (src/serve): wire protocol codecs, model
// registry hot-swap semantics, the request batcher's byte-identity
// guarantee against the direct batch engines, the end-to-end socket
// server, and the multi-process run-report merge that serving adds to obs.
//
// The two load-bearing guarantees of ISSUE 7 live here:
//   * a batched reply is byte-identical to running the same request alone
//     through predict_proba_all / shap_values_batch (ScoreMatchesDirect*,
//     ConcurrentSubmitsByteIdentical), and
//   * a hot swap never tears a request across model versions and never
//     drops in-flight work (HotSwapUnderLoadNeverTears — run under TSan in
//     the sanitizers CI job).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/model_io.hpp"
#include "features/feature_names.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace drcshap::serve {
namespace {

RandomForestClassifier train_forest(std::uint64_t seed,
                                    std::size_t n_features = 6,
                                    int n_trees = 12) {
  Dataset data(n_features);
  Rng rng(seed);
  std::vector<float> row(n_features);
  for (int i = 0; i < 300; ++i) {
    for (float& value : row) value = static_cast<float>(rng.uniform());
    data.append_row(row, row[0] + row[1] > 1.0f ? 1 : 0);
  }
  RandomForestOptions options;
  options.n_trees = n_trees;
  options.seed = seed;
  options.n_threads = 1;
  RandomForestClassifier forest(options);
  forest.fit(data);
  return forest;
}

std::vector<float> random_rows(std::uint64_t seed, std::size_t n_rows,
                               std::size_t n_features) {
  Rng rng(seed);
  std::vector<float> features(n_rows * n_features);
  for (float& value : features) value = static_cast<float>(rng.uniform());
  return features;
}

/// Pins DRCSHAP_EXPLAIN_CACHE for one scope: the cache-behaviour tests
/// must pass even in the CI leg that exports the kill switch ("0").
class ScopedCacheEnv {
 public:
  explicit ScopedCacheEnv(const char* value) {
    const char* old = std::getenv("DRCSHAP_EXPLAIN_CACHE");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv("DRCSHAP_EXPLAIN_CACHE", value, 1);
  }
  ~ScopedCacheEnv() {
    if (had_) {
      ::setenv("DRCSHAP_EXPLAIN_CACHE", saved_.c_str(), 1);
    } else {
      ::unsetenv("DRCSHAP_EXPLAIN_CACHE");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

Request matrix_request(std::uint64_t id, Verb verb, std::uint32_t n_rows,
                       std::uint32_t n_features, std::vector<float> features) {
  Request request;
  request.id = id;
  request.verb = verb;
  request.n_rows = n_rows;
  request.n_features = n_features;
  request.features = std::move(features);
  return request;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ScoreRequestRoundTrip) {
  const Request request =
      matrix_request(42, Verb::kScore, 3, 2, {1.f, 2.f, 3.f, 4.f, 5.f, 6.f});
  const auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().verb, Verb::kScore);
  EXPECT_EQ(decoded.value().n_rows, 3u);
  EXPECT_EQ(decoded.value().n_features, 2u);
  EXPECT_EQ(decoded.value().features, request.features);
}

TEST(ServeProtocol, ControlRequestRoundTrip) {
  for (const Verb verb : {Verb::kStats, Verb::kShutdown}) {
    Request request;
    request.id = 7;
    request.verb = verb;
    const auto decoded = decode_request(encode_request(request));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().verb, verb);
  }
  Request reload;
  reload.id = 8;
  reload.verb = Verb::kReload;
  reload.text = "/models/new.forest";
  const auto decoded = decode_request(encode_request(reload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().text, "/models/new.forest");
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Response response;
  response.id = 9;
  response.verb = Verb::kExplain;
  response.n_rows = 2;
  response.n_features = 3;
  response.base_value = 0.25;
  response.values = {1.0, -2.0, 3.0, 4.0, -5.0, 6.0};
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().base_value, 0.25);
  EXPECT_EQ(decoded.value().values, response.values);

  const Response error =
      error_response(10, Verb::kScore, StatusCode::kNotFound, "no model");
  const auto decoded_error = decode_response(encode_response(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().status, StatusCode::kNotFound);
  EXPECT_EQ(decoded_error.value().message, "no model");
}

TEST(ServeProtocol, GlobalExplainRoundTrip) {
  // Request side: same matrix payload as score/explain.
  const Request request = matrix_request(55, Verb::kGlobalExplain, 2, 3,
                                         {1.f, 2.f, 3.f, 4.f, 5.f, 6.f});
  const auto decoded_request = decode_request(encode_request(request));
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().to_string();
  EXPECT_EQ(decoded_request.value().verb, Verb::kGlobalExplain);
  EXPECT_EQ(decoded_request.value().features, request.features);

  // Reply side: kGlobalStatRows stat rows of n_features doubles
  // (mean |phi|, signed mean, positive fraction), n_rows = rows aggregated.
  Response response;
  response.id = 55;
  response.verb = Verb::kGlobalExplain;
  response.n_rows = 2;
  response.n_features = 3;
  response.base_value = 0.125;
  response.values = {0.5, 0.25, 0.125, -0.5, 0.25, 0.0, 0.0, 1.0, 0.5};
  ASSERT_EQ(response.values.size(), kGlobalStatRows * response.n_features);
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().n_rows, 2u);
  EXPECT_EQ(decoded.value().base_value, 0.125);
  EXPECT_EQ(decoded.value().values, response.values);
}

TEST(ServeProtocol, EcoRoundTrip) {
  Request request;
  request.id = 77;
  request.verb = Verb::kEco;
  request.text = "move 2 1.5 -0.5";
  const auto decoded_request = decode_request(encode_request(request));
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().to_string();
  EXPECT_EQ(decoded_request.value().verb, Verb::kEco);
  EXPECT_EQ(decoded_request.value().text, request.text);

  Response response;
  response.id = 77;
  response.verb = Verb::kEco;
  response.text = "{\"diff\": {\"appeared\": 1}}";
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().verb, Verb::kEco);
  EXPECT_EQ(decoded.value().text, response.text);

  const Response error = error_response(78, Verb::kEco, StatusCode::kInvalid,
                                        "eco: unknown edit op 'wiggle'");
  const auto decoded_error = decode_response(encode_response(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().status, StatusCode::kInvalid);
}

TEST(ServeProtocol, RejectsCorruption) {
  const Request request = matrix_request(1, Verb::kScore, 1, 2, {1.f, 2.f});
  const std::string body = encode_request(request);

  // Truncation anywhere inside the body.
  for (const std::size_t len : {std::size_t{0}, std::size_t{5},
                                std::size_t{12}, body.size() - 1}) {
    const auto decoded = decode_request(std::string_view(body).substr(0, len));
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorrupt);
  }
  // Trailing bytes after a well-formed payload.
  EXPECT_EQ(decode_request(body + "x").status().code(), StatusCode::kCorrupt);
  // Unknown verb, preserving the id for the error reply.
  std::string bad_verb = body;
  bad_verb[8] = 99;
  EXPECT_EQ(decode_request(bad_verb).status().code(), StatusCode::kCorrupt);
  EXPECT_EQ(peek_request_id(bad_verb), 1u);
  // A hostile row count must fail the range check, not allocate.
  Request huge = request;
  huge.n_rows = kMaxRowsPerRequest + 1;
  EXPECT_EQ(decode_request(encode_request(huge)).status().code(),
            StatusCode::kCorrupt);
}

TEST(ServeProtocol, FrameIoOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(write_frame(fds[1], "hello").ok());
  const auto frame = read_frame(fds[0]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value(), "hello");

  // Clean close at a frame boundary is kNotFound (EOF), not an error...
  ::close(fds[1]);
  EXPECT_EQ(read_frame(fds[0]).status().code(), StatusCode::kNotFound);
  ::close(fds[0]);

  // ...but close mid-frame is kCorrupt.
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t claimed = 100;
  ASSERT_EQ(::write(fds[1], &claimed, sizeof(claimed)), 4);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  EXPECT_EQ(read_frame(fds[0]).status().code(), StatusCode::kCorrupt);
  ::close(fds[0]);
}

// ---------------------------------------------------------------- registry

TEST(ServeRegistry, LoadPublishesVersionedModel) {
  const std::string path = "/tmp/drcshap_serve_registry.forest";
  save_forest_file(train_forest(11), path);

  ModelRegistry registry;
  ASSERT_TRUE(registry.load(path).ok());
  const auto model = registry.current();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->n_features, 6u);
  EXPECT_EQ(model->path, path);
  // version = "<basename>#<16-hex-digit digest>"
  EXPECT_EQ(model->version.find("drcshap_serve_registry.forest#"), 0u);
  EXPECT_EQ(model->version.size(),
            std::string("drcshap_serve_registry.forest#").size() + 16);
  std::remove(path.c_str());
}

TEST(ServeRegistry, FailedLoadKeepsCurrentModel) {
  const std::string path = "/tmp/drcshap_serve_registry_keep.forest";
  save_forest_file(train_forest(12), path);

  ModelRegistry registry;
  EXPECT_FALSE(registry.load("/tmp/drcshap_serve_nonexistent").ok());
  EXPECT_EQ(registry.current(), nullptr);

  ASSERT_TRUE(registry.load(path).ok());
  const auto before = registry.current();
  EXPECT_FALSE(registry.reload("/tmp/drcshap_serve_nonexistent").ok());
  EXPECT_EQ(registry.current(), before);  // old model keeps serving
  std::remove(path.c_str());
}

TEST(ServeRegistry, ReloadRetiresAndDrains) {
  const std::string path = "/tmp/drcshap_serve_registry_swap.forest";
  save_forest_file(train_forest(13), path);

  ModelRegistry registry;
  ASSERT_TRUE(registry.load(path).ok());
  auto in_flight = registry.current();  // a batch holding a snapshot

  ASSERT_TRUE(registry.reload().ok());  // SIGHUP-style in-place re-read
  EXPECT_EQ(registry.swap_count(), 1u);
  EXPECT_NE(registry.current(), in_flight);
  // The retired model is pinned by the in-flight snapshot...
  EXPECT_EQ(registry.retired_alive(), 1u);
  // ...and drains the moment the last holder lets go.
  in_flight.reset();
  EXPECT_EQ(registry.retired_alive(), 0u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- batcher

struct BatcherFixture : ::testing::Test {
  void SetUp() override {
    path = "/tmp/drcshap_serve_batcher.forest";
    save_forest_file(train_forest(21), path);
    ASSERT_TRUE(registry.load(path).ok());
  }
  void TearDown() override { std::remove(path.c_str()); }

  std::string path;
  ModelRegistry registry;
};

TEST_F(BatcherFixture, ScoreMatchesDirectEngineExactly) {
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  Batcher batcher(registry, options);

  const std::vector<float> features = random_rows(31, 5, 6);
  const Response response =
      batcher.submit(matrix_request(1, Verb::kScore, 5, 6, features));
  ASSERT_EQ(response.status, StatusCode::kOk) << response.message;

  const std::vector<double> direct = registry.current()->forest
      .predict_proba_all(std::span<const float>(features), 5,
                         ForestEngine::kExact);
  ASSERT_EQ(response.values.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(response.values[i], direct[i]) << "row " << i;  // bytes, not ~=
  }
}

TEST_F(BatcherFixture, ExplainMatchesDirectEngineExactly) {
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  Batcher batcher(registry, options);

  const std::vector<float> features = random_rows(32, 4, 6);
  const Response response =
      batcher.submit(matrix_request(2, Verb::kExplain, 4, 6, features));
  ASSERT_EQ(response.status, StatusCode::kOk) << response.message;

  TreeShapExplainer explainer = registry.current()->explainer;
  explainer.set_engine(ForestEngine::kExact);
  const ShapMatrix direct =
      explainer.shap_values_batch(std::span<const float>(features), 4, 1);
  EXPECT_EQ(response.base_value, explainer.base_value());
  ASSERT_EQ(response.values.size(), direct.values.size());
  for (std::size_t i = 0; i < direct.values.size(); ++i) {
    EXPECT_EQ(response.values[i], direct.values[i]) << "phi " << i;
  }
}

TEST_F(BatcherFixture, GlobalExplainMatchesDirectSummary) {
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  Batcher batcher(registry, options);

  constexpr std::uint32_t kRows = 6;
  const std::vector<float> features = random_rows(36, kRows, 6);
  const Response response = batcher.submit(
      matrix_request(5, Verb::kGlobalExplain, kRows, 6, features));
  ASSERT_EQ(response.status, StatusCode::kOk) << response.message;
  EXPECT_EQ(response.n_rows, kRows);
  EXPECT_EQ(response.n_features, 6u);
  ASSERT_EQ(response.values.size(), kGlobalStatRows * 6u);

  TreeShapExplainer explainer = registry.current()->explainer;
  explainer.set_engine(ForestEngine::kExact);
  GlobalShapSummary direct(6);
  direct.add(explainer.shap_values_batch(std::span<const float>(features),
                                         kRows, 1));
  EXPECT_EQ(response.base_value, explainer.base_value());
  for (std::size_t f = 0; f < 6; ++f) {
    EXPECT_EQ(response.values[f], direct.mean_abs(f)) << "mean_abs " << f;
    EXPECT_EQ(response.values[6 + f], direct.mean_signed(f)) << "signed " << f;
    EXPECT_EQ(response.values[12 + f], direct.positive_fraction(f))
        << "pos_frac " << f;
  }
  EXPECT_EQ(batcher.stats().global_explain_rows, kRows);
}

TEST_F(BatcherFixture, ExplainCacheCountersAccumulateInStats) {
  ScopedCacheEnv cache_on("1");
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  Batcher batcher(registry, options);

  const std::vector<float> features = random_rows(37, 4, 6);
  const Request request = matrix_request(6, Verb::kExplain, 4, 6, features);
  ASSERT_EQ(batcher.submit(request).status, StatusCode::kOk);
  const Batcher::Stats cold = batcher.stats();
  EXPECT_EQ(cold.explain_cache_hits, 0u);
  EXPECT_EQ(cold.explain_cache_misses, 4u);

  // Same rows again: every row hits the served model's cache.
  ASSERT_EQ(batcher.submit(request).status, StatusCode::kOk);
  const Batcher::Stats warm = batcher.stats();
  EXPECT_EQ(warm.explain_cache_hits, 4u);
  EXPECT_EQ(warm.explain_cache_misses, 4u);
  EXPECT_DOUBLE_EQ(warm.explain_cache_hit_rate(), 0.5);
}

TEST_F(BatcherFixture, HotSwapGetsFreshExplanationCache) {
  ScopedCacheEnv cache_on("1");
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  Batcher batcher(registry, options);

  const std::vector<float> features = random_rows(38, 3, 6);
  const Request request = matrix_request(7, Verb::kExplain, 3, 6, features);
  ASSERT_EQ(batcher.submit(request).status, StatusCode::kOk);
  const auto cache_before = registry.current()->explain_cache;
  ASSERT_NE(cache_before, nullptr);
  EXPECT_EQ(cache_before->stats().misses, 3u);

  // Reload: the new ServedModel owns a brand-new, empty cache — stale phi
  // rows retire with the old model instead of poisoning the new one.
  ASSERT_TRUE(registry.reload().ok());
  const auto cache_after = registry.current()->explain_cache;
  ASSERT_NE(cache_after, nullptr);
  EXPECT_NE(cache_after.get(), cache_before.get());
  EXPECT_EQ(cache_after->stats().entries, 0u);

  // Batcher-level counters are lifetime totals and survive the swap.
  ASSERT_EQ(batcher.submit(request).status, StatusCode::kOk);
  const Batcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.explain_cache_misses, 6u);
}

TEST_F(BatcherFixture, ConcurrentSubmitsAreByteIdenticalToSolo) {
  // A long flush window plus concurrent clients forces real coalescing:
  // requests land in shared batches at arbitrary row offsets, and each
  // reply must still equal the solo run bit for bit.
  BatchOptions options;
  options.engine = ForestEngine::kExact;
  options.max_batch_rows = 64;
  options.flush_us = 1000;
  Batcher batcher(registry, options);

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequests = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t r = 0; r < kRequests; ++r) {
        const std::uint32_t n_rows = 1 + (c + r) % 5;
        const std::vector<float> features =
            random_rows(100 * c + r, n_rows, 6);
        const Verb verb = (c + r) % 2 == 0 ? Verb::kScore : Verb::kExplain;
        const Response response = batcher.submit(
            matrix_request(c * 100 + r, verb, n_rows, 6, features));
        if (response.status != StatusCode::kOk) {
          ++mismatches;
          continue;
        }
        std::vector<double> expected;
        if (verb == Verb::kScore) {
          expected = registry.current()->forest.predict_proba_all(
              std::span<const float>(features), n_rows, ForestEngine::kExact);
        } else {
          TreeShapExplainer explainer = registry.current()->explainer;
          explainer.set_engine(ForestEngine::kExact);
          expected = explainer
                         .shap_values_batch(std::span<const float>(features),
                                            n_rows, 1)
                         .values;
        }
        if (response.values != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  const Batcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kClients * kRequests);
  EXPECT_EQ(stats.replies, kClients * kRequests);
  // Coalescing actually happened: fewer batches than requests.
  EXPECT_LT(stats.batches, stats.requests);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(BatcherFixture, FeatureCountMismatchIsTypedInvalid) {
  Batcher batcher(registry, {});
  const Response response = batcher.submit(
      matrix_request(3, Verb::kScore, 2, 4, random_rows(33, 2, 4)));
  EXPECT_EQ(response.status, StatusCode::kInvalid);
  EXPECT_NE(response.message.find("4"), std::string::npos);
}

TEST_F(BatcherFixture, SubmitAfterShutdownIsRejected) {
  Batcher batcher(registry, {});
  batcher.shutdown();
  const Response response = batcher.submit(
      matrix_request(4, Verb::kScore, 1, 6, random_rows(34, 1, 6)));
  EXPECT_EQ(response.status, StatusCode::kInvalid);
  EXPECT_EQ(batcher.stats().rejected, 1u);
}

TEST_F(BatcherFixture, HotSwapUnderLoadNeverTears) {
  // Clients hammer the batcher while the main thread keeps swapping
  // between two models. Every reply must exactly equal one of the two
  // models' full answers — a mixed (torn) reply fails, as does a dropped
  // one. This is the TSan target for the swap/drain machinery.
  const std::string path_b = "/tmp/drcshap_serve_batcher_b.forest";
  save_forest_file(train_forest(22), path_b);

  BatchOptions options;
  options.engine = ForestEngine::kExact;
  options.max_batch_rows = 32;
  options.flush_us = 300;
  Batcher batcher(registry, options);

  constexpr std::uint32_t kRows = 3;
  const std::vector<float> features = random_rows(35, kRows, 6);
  const std::vector<double> expected_a =
      registry.current()->forest.predict_proba_all(
          std::span<const float>(features), kRows, ForestEngine::kExact);
  const std::vector<double> expected_b =
      load_forest_file(path_b).predict_proba_all(
          std::span<const float>(features), kRows, ForestEngine::kExact);
  ASSERT_NE(expected_a, expected_b);  // the swap must be observable

  std::atomic<bool> stop{false};
  std::atomic<int> bad_replies{0};
  std::atomic<std::uint64_t> replies{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t id = c * 10'000;
      while (!stop.load()) {
        const Response response = batcher.submit(matrix_request(
            ++id, Verb::kScore, kRows, 6, features));
        if (response.status != StatusCode::kOk ||
            (response.values != expected_a &&
             response.values != expected_b)) {
          ++bad_replies;
        }
        ++replies;
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    ASSERT_TRUE(registry.reload(swap % 2 == 0 ? path_b : path).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  batcher.shutdown();

  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_GT(replies.load(), 0u);
  EXPECT_EQ(registry.swap_count(), 20u);
  // With traffic drained and no snapshots held, every retired model is gone.
  EXPECT_EQ(registry.retired_alive(), 0u);
  std::remove(path_b.c_str());
}

// ------------------------------------------------------------------ server

struct ServeClient {
  explicit ServeClient(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
  }
  ~ServeClient() {
    if (fd >= 0) ::close(fd);
  }

  Response call(const Request& request) {
    EXPECT_TRUE(write_frame(fd, encode_request(request)).ok());
    auto frame = read_frame(fd);
    EXPECT_TRUE(frame.ok()) << frame.status().to_string();
    auto decoded = decode_response(frame.value());
    EXPECT_TRUE(decoded.ok()) << decoded.status().to_string();
    Response response = decoded.ok() ? std::move(decoded).value() : Response{};
    EXPECT_EQ(response.id, request.id);
    return response;
  }

  int fd = -1;
};

struct ServerFixture : ::testing::Test {
  void SetUp() override {
    model_path = "/tmp/drcshap_serve_server.forest";
    socket_path = "/tmp/drcshap_serve_server.sock";
    save_forest_file(train_forest(41), model_path);
    ServerOptions options;
    options.model_path = model_path;
    options.socket_path = socket_path;
    options.batch.engine = ForestEngine::kExact;
    options.batch.flush_us = 100;
    server = std::make_unique<Server>(options);
    ASSERT_TRUE(server->start().ok());
    runner = std::thread([this] { server->run(); });
  }
  void TearDown() override {
    server->request_shutdown();
    if (runner.joinable()) runner.join();
    server.reset();
    std::remove(model_path.c_str());
  }

  std::string model_path;
  std::string socket_path;
  std::unique_ptr<Server> server;
  std::thread runner;
};

TEST_F(ServerFixture, ScoreAndExplainOverSocketMatchDirectCalls) {
  ServeClient client(socket_path);
  const std::vector<float> features = random_rows(51, 4, 6);

  const Response score =
      client.call(matrix_request(1, Verb::kScore, 4, 6, features));
  ASSERT_EQ(score.status, StatusCode::kOk) << score.message;
  const auto model = server->registry().current();
  const std::vector<double> direct = model->forest.predict_proba_all(
      std::span<const float>(features), 4, ForestEngine::kExact);
  EXPECT_EQ(score.values, direct);  // byte-identical through the wire

  const Response explain =
      client.call(matrix_request(2, Verb::kExplain, 4, 6, features));
  ASSERT_EQ(explain.status, StatusCode::kOk) << explain.message;
  TreeShapExplainer explainer = model->explainer;
  explainer.set_engine(ForestEngine::kExact);
  const ShapMatrix shap =
      explainer.shap_values_batch(std::span<const float>(features), 4, 1);
  EXPECT_EQ(explain.values, shap.values);
  EXPECT_EQ(explain.base_value, explainer.base_value());
}

TEST_F(ServerFixture, StatsReloadAndShutdownVerbs) {
  ServeClient client(socket_path);

  Request stats_request;
  stats_request.id = 1;
  stats_request.verb = Verb::kStats;
  const Response stats = client.call(stats_request);
  ASSERT_EQ(stats.status, StatusCode::kOk);
  const auto doc = obs::JsonValue::parse(stats.text);
  EXPECT_EQ(doc.at("model").at("n_features").as_number(), 6.0);
  EXPECT_EQ(doc.at("model").at("swaps").as_number(), 0.0);
  EXPECT_TRUE(doc.at("latency_ms").at("score").contains("p99_ms"));

  // Reload from an explicit path (a retrained model) swaps the version.
  const std::string version_before =
      doc.at("model").at("version").as_string();
  const std::string new_path = "/tmp/drcshap_serve_server_v2.forest";
  save_forest_file(train_forest(42), new_path);
  Request reload_request;
  reload_request.id = 2;
  reload_request.verb = Verb::kReload;
  reload_request.text = new_path;
  const Response reload = client.call(reload_request);
  ASSERT_EQ(reload.status, StatusCode::kOk) << reload.message;
  EXPECT_NE(reload.text, version_before);
  EXPECT_EQ(server->registry().swap_count(), 1u);
  std::remove(new_path.c_str());

  // Reload from a bad path is a typed error and the daemon keeps serving.
  reload_request.id = 3;
  reload_request.text = "/tmp/drcshap_serve_no_such_model";
  EXPECT_NE(client.call(reload_request).status, StatusCode::kOk);
  const Response still_alive =
      client.call(matrix_request(4, Verb::kScore, 1, 6, random_rows(52, 1, 6)));
  EXPECT_EQ(still_alive.status, StatusCode::kOk);

  // Shutdown: ok reply, then EOF — the daemon drained and closed cleanly.
  Request shutdown_request;
  shutdown_request.id = 5;
  shutdown_request.verb = Verb::kShutdown;
  EXPECT_EQ(client.call(shutdown_request).status, StatusCode::kOk);
  EXPECT_EQ(read_frame(client.fd).status().code(), StatusCode::kNotFound);
  runner.join();  // run() returns once teardown finishes
}

TEST_F(ServerFixture, GlobalExplainAndCacheStatsOverSocket) {
  ScopedCacheEnv cache_on("1");
  ServeClient client(socket_path);
  const std::vector<float> features = random_rows(55, 5, 6);

  // Two identical explain calls: the second is served from the model's
  // explanation cache, and the reply must not change a bit.
  const Response cold =
      client.call(matrix_request(1, Verb::kExplain, 5, 6, features));
  ASSERT_EQ(cold.status, StatusCode::kOk) << cold.message;
  const Response warm =
      client.call(matrix_request(2, Verb::kExplain, 5, 6, features));
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_EQ(warm.values, cold.values);

  // Global summary over the same rows equals folding the explain reply.
  const Response global =
      client.call(matrix_request(3, Verb::kGlobalExplain, 5, 6, features));
  ASSERT_EQ(global.status, StatusCode::kOk) << global.message;
  ASSERT_EQ(global.values.size(), kGlobalStatRows * 6u);
  GlobalShapSummary expected(6);
  for (std::size_t r = 0; r < 5; ++r) {
    expected.add(std::span<const double>(cold.values.data() + r * 6, 6));
  }
  for (std::size_t f = 0; f < 6; ++f) {
    EXPECT_EQ(global.values[f], expected.mean_abs(f));
    EXPECT_EQ(global.values[6 + f], expected.mean_signed(f));
    EXPECT_EQ(global.values[12 + f], expected.positive_fraction(f));
  }

  // The stats verb surfaces the cache counters.
  Request stats_request;
  stats_request.id = 4;
  stats_request.verb = Verb::kStats;
  const Response stats = client.call(stats_request);
  ASSERT_EQ(stats.status, StatusCode::kOk);
  const auto doc = obs::JsonValue::parse(stats.text);
  const auto& cache = doc.at("explain_cache");
  EXPECT_TRUE(cache.at("enabled").as_bool());
  EXPECT_GE(cache.at("hits").as_number(), 5.0);
  EXPECT_GE(cache.at("misses").as_number(), 5.0);
  EXPECT_GT(cache.at("hit_rate").as_number(), 0.0);
  EXPECT_GE(cache.at("entries").as_number(), 5.0);
  EXPECT_GT(cache.at("capacity").as_number(), 0.0);
  EXPECT_EQ(doc.at("requests").at("global_explain_rows").as_number(), 5.0);
}

TEST_F(ServerFixture, SighupTriggersInPlaceReload) {
  server->notify_sighup();
  // The accept loop applies the reload on its next poll tick (≤200 ms).
  for (int i = 0; i < 50 && server->registry().swap_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server->registry().swap_count(), 1u);
  ServeClient client(socket_path);
  const Response response =
      client.call(matrix_request(1, Verb::kScore, 1, 6, random_rows(53, 1, 6)));
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_F(ServerFixture, CorruptFrameGetsTypedReplyThenClose) {
  ServeClient client(socket_path);
  // Valid frame, garbage body: decode fails, the reply carries the typed
  // status (and the id we sent), then the server closes the stream.
  std::string garbage(12, '\xff');
  const std::uint64_t id = 77;
  std::memcpy(garbage.data(), &id, sizeof(id));
  ASSERT_TRUE(write_frame(client.fd, garbage).ok());
  const auto frame = read_frame(client.fd);
  ASSERT_TRUE(frame.ok());
  const auto decoded = decode_response(frame.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, StatusCode::kCorrupt);
  EXPECT_EQ(decoded.value().id, 77u);
  EXPECT_EQ(read_frame(client.fd).status().code(), StatusCode::kNotFound);
}

TEST_F(ServerFixture, OversizedRequestIsRejectedNotServed) {
  ServeClient client(socket_path);
  Request huge = matrix_request(6, Verb::kScore, 2, 6, random_rows(54, 2, 6));
  std::string body = encode_request(huge);
  // Lie about n_rows in the encoded body (offset 9: after id + verb).
  const std::uint32_t rows = kMaxRowsPerRequest + 1;
  std::memcpy(body.data() + 9, &rows, sizeof(rows));
  ASSERT_TRUE(write_frame(client.fd, body).ok());
  const auto frame = read_frame(client.fd);
  ASSERT_TRUE(frame.ok());
  const auto decoded = decode_response(frame.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, StatusCode::kCorrupt);
}

TEST_F(ServerFixture, EcoWithoutResidentDesignIsTypedNotFound) {
  ServeClient client(socket_path);
  Request request;
  request.id = 9;
  request.verb = Verb::kEco;
  request.text = "move 0 1.0 0.0";
  const Response response = client.call(request);
  EXPECT_EQ(response.status, StatusCode::kNotFound);
  // The daemon keeps serving after the typed rejection.
  const Response score = client.call(
      matrix_request(10, Verb::kScore, 1, 6, random_rows(56, 1, 6)));
  EXPECT_EQ(score.status, StatusCode::kOk);
}

// Socket server with a resident ECO design: a pipeline-schema model is
// trained once (fft_2, scaled), and every test serves edits against a
// resident scaled bridge32_a.
struct EcoServerFixture : ::testing::Test {
  static void SetUpTestSuite() {
    PipelineOptions options;
    options.generator.scale = 16.0;
    Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
    train.append(run_pipeline(suite_spec("fft_2"), options).samples);
    RandomForestOptions forest_options;
    forest_options.n_trees = 25;
    RandomForestClassifier forest(forest_options);
    forest.fit(train);
    save_forest_file(forest, kModelPath);
  }
  static void TearDownTestSuite() { std::remove(kModelPath); }

  void SetUp() override {
    socket_path = "/tmp/drcshap_serve_eco.sock";
    ServerOptions options;
    options.model_path = kModelPath;
    options.socket_path = socket_path;
    options.batch.flush_us = 100;
    options.eco_design = "bridge32_a";
    options.eco_scale = 16.0;
    server = std::make_unique<Server>(options);
    ASSERT_TRUE(server->start().ok());
    runner = std::thread([this] { server->run(); });
  }
  void TearDown() override {
    server->request_shutdown();
    if (runner.joinable()) runner.join();
    server.reset();
  }

  static Request eco_request(std::uint64_t id, std::string text) {
    Request request;
    request.id = id;
    request.verb = Verb::kEco;
    request.text = std::move(text);
    return request;
  }

  static constexpr const char* kModelPath = "/tmp/drcshap_serve_eco.forest";
  std::string socket_path;
  std::unique_ptr<Server> server;
  std::thread runner;
};

TEST_F(EcoServerFixture, EditDiffRoundTripOverSocket) {
  ServeClient client(socket_path);
  const Response response = client.call(eco_request(1, "move 0 5.0 0.0"));
  ASSERT_EQ(response.status, StatusCode::kOk) << response.message;

  const auto doc = obs::JsonValue::parse(response.text);
  EXPECT_EQ(doc.at("design").as_string(), "bridge32_a");
  EXPECT_EQ(doc.at("edit").as_string(), "move 0 5.0 0.0");
  EXPECT_GT(doc.at("cells").as_number(), 0.0);
  EXPECT_GT(doc.at("stats").at("dirty_cells").as_number(), 0.0);
  EXPECT_EQ(doc.at("stats").at("rows_rescored").as_number(),
            doc.at("stats").at("dirty_cells").as_number());
  EXPECT_TRUE(doc.at("diff").contains("appeared"));
  EXPECT_TRUE(doc.at("diff").contains("entries"));

  // Second edit against the same resident state: the engine is stateful,
  // so moving the macro back also succeeds and counts as another edit.
  const Response undo = client.call(eco_request(2, "move 0 -5.0 0.0"));
  ASSERT_EQ(undo.status, StatusCode::kOk) << undo.message;

  Request stats_request;
  stats_request.id = 3;
  stats_request.verb = Verb::kStats;
  const Response stats = client.call(stats_request);
  ASSERT_EQ(stats.status, StatusCode::kOk);
  const auto stats_doc = obs::JsonValue::parse(stats.text);
  EXPECT_TRUE(stats_doc.at("eco").at("resident").as_bool());
  EXPECT_EQ(stats_doc.at("eco").at("design").as_string(), "bridge32_a");
  EXPECT_EQ(stats_doc.at("eco").at("edits").as_number(), 2.0);
  EXPECT_TRUE(stats_doc.at("latency_ms").at("eco").contains("p99_ms"));
}

TEST_F(EcoServerFixture, MalformedAndInvalidEditsAreTypedErrors) {
  ServeClient client(socket_path);
  // Parse errors: unknown op, missing operands, trailing garbage.
  for (const char* bad : {"wiggle 3", "move 0", "move 0 1.0 0.0 extra", ""}) {
    const Response response = client.call(eco_request(1, bad));
    EXPECT_EQ(response.status, StatusCode::kInvalid) << bad;
  }
  // Well-formed but semantically invalid: the engine rejects it and the
  // resident state survives.
  const Response unknown_macro =
      client.call(eco_request(2, "move 9999 1.0 0.0"));
  EXPECT_EQ(unknown_macro.status, StatusCode::kInvalid);
  const Response unknown_net = client.call(eco_request(3, "reroute no_such"));
  EXPECT_EQ(unknown_net.status, StatusCode::kInvalid);

  const Response ok = client.call(eco_request(4, "move 0 1.0 0.0"));
  EXPECT_EQ(ok.status, StatusCode::kOk) << ok.message;
}

// --------------------------------------------------- run-report merging

TEST(ServeReport, PerProcessPathEmbedsPid) {
  const std::string path =
      obs::per_process_report_path("/tmp/dir/runreport.json");
  const std::string expected = "/tmp/dir/runreport.pid" +
                               std::to_string(::getpid()) + ".json";
  EXPECT_EQ(path, expected);
  // Extension-less paths get the suffix appended at the end.
  EXPECT_EQ(obs::per_process_report_path("report"),
            "report.pid" + std::to_string(::getpid()));
}

TEST(ServeReport, SiblingScanFindsOnlyMatchingReports) {
  const std::string dir = "/tmp/drcshap_serve_reports";
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/runreport.json";
  const auto write = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text.c_str(), f);
    std::fclose(f);
  };
  write(dir + "/runreport.pid100.json", "{}");
  write(dir + "/runreport.pid200.json", "{}");
  write(dir + "/runreport.json", "{}");       // the base itself: excluded
  write(dir + "/other.pid300.json", "{}");    // different stem: excluded

  const std::vector<std::string> siblings = obs::sibling_report_paths(base);
  ASSERT_EQ(siblings.size(), 2u);
  EXPECT_EQ(siblings[0], dir + "/runreport.pid100.json");
  EXPECT_EQ(siblings[1], dir + "/runreport.pid200.json");
  std::filesystem::remove_all(dir);
}

TEST(ServeReport, MergeSumsCountersAndCombinesTimers) {
  auto mine = obs::JsonValue::parse(R"({
    "tool": "bench_serve",
    "counters": {"serve/requests": 10, "bench/only": 1},
    "gauges": {"shared": 1.5},
    "timers": {"t": {"count": 2, "total_ms": 10.0, "mean_ms": 5.0,
                     "max_ms": 7.0}}
  })");
  const auto theirs = obs::JsonValue::parse(R"({
    "tool": "drcshap_serve",
    "counters": {"serve/requests": 32, "serve/batches": 4},
    "gauges": {"shared": 9.0, "daemon_only": 2.0},
    "notes": {"serve/model": "m#1"},
    "timers": {"t": {"count": 1, "total_ms": 20.0, "mean_ms": 20.0,
                     "max_ms": 20.0},
               "u": {"count": 1, "total_ms": 1.0, "mean_ms": 1.0,
                     "max_ms": 1.0}}
  })");
  obs::merge_run_report(mine, theirs);

  EXPECT_EQ(mine.at("counters").at("serve/requests").as_number(), 42.0);
  EXPECT_EQ(mine.at("counters").at("bench/only").as_number(), 1.0);
  EXPECT_EQ(mine.at("counters").at("serve/batches").as_number(), 4.0);
  // Gauges: the merging process keeps its own on collision, adopts the rest.
  EXPECT_EQ(mine.at("gauges").at("shared").as_number(), 1.5);
  EXPECT_EQ(mine.at("gauges").at("daemon_only").as_number(), 2.0);
  EXPECT_EQ(mine.at("notes").at("serve/model").as_string(), "m#1");
  // Timers: counts/totals sum, mean recomputed, max maxed.
  const auto& timer = mine.at("timers").at("t");
  EXPECT_EQ(timer.at("count").as_number(), 3.0);
  EXPECT_EQ(timer.at("total_ms").as_number(), 30.0);
  EXPECT_EQ(timer.at("mean_ms").as_number(), 10.0);
  EXPECT_EQ(timer.at("max_ms").as_number(), 20.0);
  EXPECT_EQ(mine.at("timers").at("u").at("count").as_number(), 1.0);
  ASSERT_TRUE(mine.at("merged_from").is_array());
  EXPECT_EQ(mine.at("merged_from").as_array()[0].as_string(),
            "drcshap_serve");
}

// The span overload the batcher rides must agree with the Dataset one the
// offline pipeline uses — same rows, same engine, same bytes.
TEST(ServeEngine, SpanOverloadMatchesDatasetOverload) {
  const RandomForestClassifier forest = train_forest(61);
  const std::vector<float> features = random_rows(62, 7, 6);
  Dataset data(6);
  for (std::size_t i = 0; i < 7; ++i) {
    data.append_row(std::span<const float>(features).subspan(i * 6, 6), 0);
  }
  for (const ForestEngine engine :
       {ForestEngine::kExact, ForestEngine::kCompiled}) {
    const std::vector<double> via_span = forest.predict_proba_all(
        std::span<const float>(features), 7, engine);
    const std::vector<double> via_dataset =
        forest.predict_proba_all(data, engine);
    EXPECT_EQ(via_span, via_dataset);
  }
}

}  // namespace
}  // namespace drcshap::serve
