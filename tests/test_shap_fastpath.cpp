// Byte-identity suite for the batched fast TreeSHAP path and the
// explanation cache: whatever combination of walk (reference recursion /
// scalar fast / AVX2 fast), traversal engine (exact / compiled), thread
// count, and cache configuration runs, every phi double must match the
// reference recursion bit for bit. The fast path is only allowed to change
// speed, never a single output bit — same contract the compiled inference
// backend makes, now for explanations.

#include "core/tree_shap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/explanation_cache.hpp"
#include "core/random_forest.hpp"
#include "features/feature_names.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Temporarily pins one environment variable, restoring on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

Dataset random_data(std::size_t n, std::size_t n_features,
                    std::uint64_t seed) {
  Dataset d(n_features);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(n_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    double score = x[0] + x[1 % n_features] + x[2 % n_features];
    if (x[0] > 0.5 && x[1 % n_features] > 0.5) score += 1.0;
    score += 0.3 * rng.normal();
    d.append_row(x, score > 1.6 ? 1 : 0, 0);
  }
  return d;
}

/// Evaluation rows engineered against the walks' branch decisions: values
/// exactly on fitted thresholds, one ulp to either side, NaN (comparisons
/// false, so the sample always goes right), signed zeros, infinities, and
/// duplicated rows (exercising the dedupe-scatter path).
Dataset adversarial_rows(const RandomForestClassifier& forest, std::size_t n,
                         std::uint64_t seed) {
  const FlatForest& flat = forest.flat();
  std::vector<float> thresholds;
  for (std::size_t node = 0; node < flat.n_nodes(); ++node) {
    if (flat.feature()[node] >= 0) {
      thresholds.push_back(flat.threshold()[node]);
    }
  }
  constexpr float kInf = std::numeric_limits<float>::infinity();
  Dataset d(flat.n_features());
  Rng rng(seed);
  std::vector<float> x(flat.n_features());
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : x) {
      const int kind = static_cast<int>(rng.uniform() * 10.0);
      if (kind <= 2 && !thresholds.empty()) {
        float t = thresholds[static_cast<std::size_t>(rng.uniform() *
                             static_cast<double>(thresholds.size())) %
                             thresholds.size()];
        if (kind == 1) t = std::nextafter(t, kInf);
        if (kind == 2) t = std::nextafter(t, -kInf);
        v = t;
      } else if (kind == 3) {
        v = rng.bernoulli(0.5) ? 0.0f : -0.0f;
      } else if (kind == 4) {
        v = rng.bernoulli(0.5) ? kInf : -kInf;
      } else if (kind == 5) {
        v = std::nanf("");
      } else {
        v = static_cast<float>(rng.uniform() * 2.0 - 0.5);
      }
    }
    d.append_row(x, 0, 0);
    if (rng.bernoulli(0.3)) d.append_row(x, 0, 0);  // duplicate row
  }
  return d;
}

/// Ground truth: the reference recursion (fast path and SIMD disabled,
/// no cache attached), single-threaded.
ShapMatrix reference_phi(const RandomForestClassifier& forest,
                         const Dataset& data, ForestEngine engine) {
  ScopedEnv fast("DRCSHAP_SHAP_FAST", "0");
  ScopedEnv cache("DRCSHAP_EXPLAIN_CACHE", "0");
  TreeShapExplainer explainer(forest);
  explainer.set_engine(engine);
  return explainer.shap_values_batch(data, 1);
}

void check_all_configs(const RandomForestClassifier& forest,
                       const Dataset& data) {
  // The cache-on legs must work even when the CI job under test exports
  // DRCSHAP_EXPLAIN_CACHE=0 (the kill-switch leg); the env-disabled leg
  // below pins its own "0" scope.
  ScopedEnv cache_on("DRCSHAP_EXPLAIN_CACHE", "1");
  for (const ForestEngine engine :
       {ForestEngine::kExact, ForestEngine::kCompiled}) {
    SCOPED_TRACE(engine == ForestEngine::kExact ? "engine=exact"
                                                : "engine=compiled");
    const ShapMatrix reference = reference_phi(forest, data, engine);

    TreeShapExplainer explainer(forest);
    explainer.set_engine(engine);
    const auto cache = std::make_shared<ExplanationCache>();
    for (const bool with_cache : {false, true}) {
      SCOPED_TRACE(with_cache ? "cache=on" : "cache=off");
      explainer.set_cache(with_cache ? cache : nullptr);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expect_bits_equal(reference.values,
                          explainer.shap_values_batch(data, threads).values);
      }
    }
    // Warm cache: every row now hits; the scatter must still reproduce the
    // reference bits exactly.
    explainer.set_cache(cache);
    expect_bits_equal(reference.values,
                      explainer.shap_values_batch(data, 2).values);
    EXPECT_GT(cache->stats().hits, 0u);

    {
      // Scalar fast walk (SIMD kill switch): same bits again.
      ScopedEnv simd("DRCSHAP_SIMD", "0");
      TreeShapExplainer scalar_explainer(forest);
      scalar_explainer.set_engine(engine);
      expect_bits_equal(reference.values,
                        scalar_explainer.shap_values_batch(data, 1).values);
    }
    {
      // Cache attached but disabled by env: bypassed, bits unchanged.
      ScopedEnv off("DRCSHAP_EXPLAIN_CACHE", "0");
      const ExplanationCacheStats before = cache->stats();
      expect_bits_equal(reference.values,
                        explainer.shap_values_batch(data, 1).values);
      const ExplanationCacheStats after = cache->stats();
      EXPECT_EQ(before.hits + before.misses, after.hits + after.misses);
    }
  }
}

TEST(ShapFastPath, FuzzForestsByteIdenticalAcrossAllConfigs) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Dataset train = random_data(240, 10, seed);
    RandomForestOptions options;
    options.n_trees = 20;
    options.seed = seed;
    RandomForestClassifier forest(options);
    forest.fit(train);
    const Dataset eval = adversarial_rows(forest, 40, seed + 100);
    check_all_configs(forest, eval);
  }
}

TEST(ShapFastPath, HandBuiltAdversarialTrees) {
  // Tree 0: duplicated split feature along one path, thresholds one ulp
  // apart — the unique-path folding and dup_index machinery must agree
  // with the reference recursion on which branch each value takes.
  const float t = 0.5f;
  const float t_up = std::nextafter(t, 2.0f);
  std::vector<TreeNode> dup(7);
  dup[0] = {0, t, 1, 2, 0.5, 100.0};
  dup[1] = {0, std::nextafter(t, -2.0f), 3, 4, 0.3, 60.0};
  dup[2] = {1, -0.0f, 5, 6, 0.8, 40.0};
  dup[3] = {-1, 0.0f, -1, -1, 0.1, 30.0};
  dup[4] = {-1, 0.0f, -1, -1, 0.5, 30.0};
  dup[5] = {-1, 0.0f, -1, -1, 0.7, 25.0};
  dup[6] = {-1, 0.0f, -1, -1, 0.9, 15.0};
  DecisionTree tree_dup;
  tree_dup.set_nodes(dup, 2);

  // Tree 1: threshold exactly -0.0 (x <= -0.0 is true for both zeros).
  std::vector<TreeNode> zero(3);
  zero[0] = {1, -0.0f, 1, 2, 0.4, 80.0};
  zero[1] = {-1, 0.0f, -1, -1, 0.2, 50.0};
  zero[2] = {-1, 0.0f, -1, -1, 0.75, 30.0};
  DecisionTree tree_zero;
  tree_zero.set_nodes(zero, 2);

  RandomForestClassifier forest(RandomForestOptions{});
  forest.set_trees({tree_dup, tree_zero}, RandomForestOptions{});

  Dataset eval(2);
  for (const float x0 : {t, t_up, std::nextafter(t, -2.0f), -0.0f,
                         std::nanf(""), 0.75f}) {
    for (const float x1 : {-0.0f, 0.0f, std::nanf(""), -1.0f, 1.0f}) {
      eval.append_row(std::vector<float>{x0, x1}, 0, 0);
    }
  }
  check_all_configs(forest, eval);
}

/// The full 14-design suite at test scale, one fitted forest: reference
/// recursion vs the fast path across engines, thread counts, and both
/// cache configurations, byte-identical on every design's real feature
/// distribution.
TEST(ShapFastPathSuite, AllSuiteDesignsByteIdentical) {
  ScopedEnv cache_on("DRCSHAP_EXPLAIN_CACHE", "1");
  PipelineOptions tiny;
  tiny.generator.scale = 16.0;

  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  std::vector<Dataset> designs;
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    designs.push_back(run_pipeline(spec, tiny).samples);
  }
  train.append(designs[0]);
  train.append(designs[1]);

  RandomForestOptions options;
  options.n_trees = 50;
  RandomForestClassifier forest(options);
  forest.fit(train);

  const auto cache = std::make_shared<ExplanationCache>();
  for (std::size_t i = 0; i < designs.size(); ++i) {
    SCOPED_TRACE("design " + ispd2015_suite()[i].name);
    if (designs[i].n_rows() == 0) continue;
    // Cap per-design rows: identity per row is what matters, not volume.
    std::vector<std::size_t> rows(
        std::min<std::size_t>(designs[i].n_rows(), 24));
    for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
    const Dataset d = designs[i].subset(rows);

    const ShapMatrix reference = reference_phi(forest, d, ForestEngine::kExact);
    for (const ForestEngine engine :
         {ForestEngine::kExact, ForestEngine::kCompiled}) {
      // Engines are byte-identical to each other, so one reference serves
      // both (proved independently by the fuzz test above).
      TreeShapExplainer explainer(forest);
      explainer.set_engine(engine);
      expect_bits_equal(reference.values,
                        explainer.shap_values_batch(d, 3).values);
      explainer.set_cache(cache);  // cold insert on first engine, hits later
      expect_bits_equal(reference.values,
                        explainer.shap_values_batch(d, 1).values);
    }
  }
  EXPECT_GT(cache->stats().hits, 0u);
}

}  // namespace
}  // namespace drcshap
