// Bit-identity and correctness tests for the parallel EDA substrate: the
// feature matrices and DRC labels a pipeline run produces must be
// byte-identical at any thread count (the dataset contract every
// downstream experiment relies on), and the GridGraph's O(1) incremental
// overflow totals must agree with a brute-force rescan.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "route/grid_graph.hpp"
#include "route/net_route.hpp"

namespace drcshap {
namespace {

/// FNV-1a over raw bytes; digests make mismatches cheap to compare and
/// easy to report.
std::uint64_t fnv1a(const void* data, std::size_t n_bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n_bytes; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

std::uint64_t features_digest(const DesignRun& run) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t r = 0; r < run.samples.n_rows(); ++r) {
    const auto row = run.samples.row(r);
    h ^= fnv1a(row.data(), row.size() * sizeof(float));
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t labels_digest(const DesignRun& run) {
  std::vector<std::uint8_t> labels(run.samples.n_rows());
  for (std::size_t r = 0; r < labels.size(); ++r) {
    labels[r] = run.samples.label(r) ? 1 : 0;
  }
  return fnv1a(labels.data(), labels.size());
}

DesignRun run_design(const char* name, std::size_t n_threads) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  options.n_threads = n_threads;
  return run_pipeline(suite_spec(name), options);
}

class SubstrateDigest : public ::testing::TestWithParam<const char*> {};

// The golden contract: one design, pipeline run serially and with the
// intra-design stages fanned out over (up to) 8 workers, must produce a
// byte-identical feature matrix and label vector. Exact float equality is
// deliberate — the parallel fill is slot-per-index with no reductions.
TEST_P(SubstrateDigest, SerialAndParallelRunsAreByteIdentical) {
  const DesignRun serial = run_design(GetParam(), 1);
  const DesignRun parallel = run_design(GetParam(), 8);

  EXPECT_EQ(features_digest(serial), features_digest(parallel));
  EXPECT_EQ(labels_digest(serial), labels_digest(parallel));

  ASSERT_EQ(serial.samples.n_rows(), parallel.samples.n_rows());
  for (std::size_t r = 0; r < serial.samples.n_rows(); ++r) {
    const auto a = serial.samples.row(r);
    const auto b = parallel.samples.row(r);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
        << "feature row " << r << " differs";
    ASSERT_EQ(serial.samples.label(r), parallel.samples.label(r))
        << "label " << r << " differs";
  }
  EXPECT_EQ(serial.drc.n_hotspots, parallel.drc.n_hotspots);
}

INSTANTIATE_TEST_SUITE_P(Suite, SubstrateDigest,
                         ::testing::Values("fft_1", "fft_b", "des_perf_1"));

TEST(ParallelSubstrate, ExtractAllMatchesSerial) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  const DesignRun run = run_design("fft_b", 1);
  const FeatureExtractor extractor(run.design, run.congestion);
  const std::vector<float> serial = extractor.extract_all(1);
  const std::vector<float> parallel = extractor.extract_all(8);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(0,
            std::memcmp(serial.data(), parallel.data(),
                        serial.size() * sizeof(float)));
}

// The aggregates-sharing, thread-parallel oracle overload must reproduce
// the original serial overload exactly: same violations in the same order,
// same hotspot map.
TEST(ParallelSubstrate, OracleOverloadsAgree) {
  const DesignRun run = run_design("des_perf_1", 1);
  const DrcOracleOptions options;
  const DrcReport serial = run_drc_oracle(run.design, run.congestion, options);
  const DrcReport parallel =
      run_drc_oracle(run.design, run.congestion,
                     compute_gcell_aggregates(run.design), options, 8);

  EXPECT_EQ(serial.n_hotspots, parallel.n_hotspots);
  EXPECT_EQ(serial.hotspot, parallel.hotspot);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    const DrcViolation& a = serial.violations[i];
    const DrcViolation& b = parallel.violations[i];
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.metal_layer, b.metal_layer) << i;
    EXPECT_DOUBLE_EQ(a.box.x_lo, b.box.x_lo) << i;
    EXPECT_DOUBLE_EQ(a.box.y_lo, b.box.y_lo) << i;
    EXPECT_DOUBLE_EQ(a.box.x_hi, b.box.x_hi) << i;
    EXPECT_DOUBLE_EQ(a.box.y_hi, b.box.y_hi) << i;
  }
}

// The incremental O(1) overflow totals must track a brute-force rescan
// through arbitrary load/unload sequences, including capacity-zero edges.
TEST(ParallelSubstrate, IncrementalOverflowTotalsMatchBruteForce) {
  const DesignRun run = run_design("fft_1", 1);
  GridGraph g(run.design);

  auto brute_edge = [&] {
    long total = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) total += g.edge_overflow(e);
    return total;
  };
  auto brute_via = [&] {
    long total = 0;
    for (int v = 0; v < g.num_via_layers(); ++v) {
      for (std::size_t cell = 0; cell < g.num_cells(); ++cell) {
        total += g.via_overflow(v, cell);
      }
    }
    return total;
  };

  EXPECT_EQ(g.total_edge_overflow(), 0);
  EXPECT_EQ(g.total_via_overflow(), 0);

  // Pile asymmetric load on a stride of edges and vias, check, then remove
  // half and check again.
  for (EdgeId e = 0; e < g.num_edges(); e += 3) {
    g.add_edge_load(e, (static_cast<int>(e % 7) + 1) * 16);
  }
  for (std::size_t cell = 0; cell < g.num_cells(); cell += 2) {
    g.add_via_load(static_cast<int>(cell % g.num_via_layers()), cell,
                   (static_cast<int>(cell % 5) + 1) * 16);
  }
  EXPECT_EQ(g.total_edge_overflow(), brute_edge());
  EXPECT_EQ(g.total_via_overflow(), brute_via());
  EXPECT_GT(g.total_edge_overflow() + g.total_via_overflow(), 0);

  for (EdgeId e = 0; e < g.num_edges(); e += 6) {
    g.add_edge_load(e, -(static_cast<int>(e % 7) + 1) * 16);
  }
  EXPECT_EQ(g.total_edge_overflow(), brute_edge());

  g.reset_loads();
  EXPECT_EQ(g.total_edge_overflow(), 0);
  EXPECT_EQ(g.total_via_overflow(), 0);
  EXPECT_EQ(brute_edge(), 0);
  EXPECT_EQ(brute_via(), 0);
}

}  // namespace
}  // namespace drcshap
