#include "baselines/svm_rbf.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset linearly_separable(std::size_t n, std::uint64_t seed) {
  Dataset d(2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const double cx = label ? 2.0 : -2.0;
    d.append_row(std::vector<float>{static_cast<float>(cx + rng.normal() * 0.5),
                                    static_cast<float>(rng.normal() * 0.5)},
                 label, 0);
  }
  return d;
}

Dataset xor_blobs(std::size_t n, std::uint64_t seed) {
  Dataset d(2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int a = rng.bernoulli(0.5);
    const int b = rng.bernoulli(0.5);
    d.append_row(
        std::vector<float>{static_cast<float>((a ? 1 : -1) + rng.normal() * 0.3),
                           static_cast<float>((b ? 1 : -1) + rng.normal() * 0.3)},
        a ^ b, 0);
  }
  return d;
}

double accuracy(const BinaryClassifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    if ((model.predict_proba(d.row(i)) >= 0.5 ? 1 : 0) == d.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(d.n_rows());
}

TEST(SvmRbf, SolvesLinearlySeparable) {
  const Dataset train = linearly_separable(300, 1);
  const Dataset test = linearly_separable(300, 2);
  SvmRbfOptions options;
  options.C = 1.0;
  options.gamma = 0.5;
  SvmRbfClassifier svm(options);
  svm.fit(train);
  EXPECT_GT(accuracy(svm, test), 0.97);
}

TEST(SvmRbf, RbfKernelSolvesXor) {
  const Dataset train = xor_blobs(400, 3);
  const Dataset test = xor_blobs(400, 4);
  SvmRbfOptions options;
  options.C = 5.0;
  options.gamma = 1.0;
  SvmRbfClassifier svm(options);
  svm.fit(train);
  EXPECT_GT(accuracy(svm, test), 0.95);
}

TEST(SvmRbf, AutoGammaWorks) {
  const Dataset train = xor_blobs(300, 5);
  SvmRbfClassifier svm;  // gamma = 0 -> auto
  svm.fit(train);
  EXPECT_GT(accuracy(svm, train), 0.9);
}

TEST(SvmRbf, DualVariablesRespectKkt) {
  // With separable data and margin, there should be far fewer SVs than
  // training points, and decision values should separate the classes.
  const Dataset train = linearly_separable(400, 6);
  SvmRbfOptions options;
  options.C = 10.0;
  options.gamma = 0.5;
  SvmRbfClassifier svm(options);
  svm.fit(train);
  EXPECT_LT(svm.n_support_vectors(), 200u);
  EXPECT_GT(svm.n_support_vectors(), 0u);
  int margin_ok = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const double dec = svm.decision_value(train.row(i));
    if ((dec > 0) == (train.label(i) == 1)) ++margin_ok;
  }
  EXPECT_GE(margin_ok, 97);
}

TEST(SvmRbf, UndersamplesToCap) {
  Dataset train(2);
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const int label = i < 100 ? 1 : 0;
    const double cx = label ? 1.5 : -1.5;
    train.append_row(
        std::vector<float>{static_cast<float>(cx + rng.normal() * 0.4),
                           static_cast<float>(rng.normal())},
        label, 0);
  }
  SvmRbfOptions options;
  options.max_training_samples = 400;
  options.gamma = 0.5;
  SvmRbfClassifier svm(options);
  svm.fit(train);
  // SV count bounded by the cap, and the model still separates.
  EXPECT_LE(svm.n_support_vectors(), 400u);
  EXPECT_GT(accuracy(svm, train), 0.9);
}

TEST(SvmRbf, PredictProbaMonotoneInDecision) {
  const Dataset train = linearly_separable(200, 8);
  SvmRbfClassifier svm;
  svm.fit(train);
  const auto a = train.row(0);
  const auto b = train.row(1);
  const bool order_decision = svm.decision_value(a) < svm.decision_value(b);
  const bool order_proba = svm.predict_proba(a) < svm.predict_proba(b);
  EXPECT_EQ(order_decision, order_proba);
}

TEST(SvmRbf, ComplexityCountersMatchSvCount) {
  const Dataset train = linearly_separable(200, 9);
  SvmRbfClassifier svm;
  svm.fit(train);
  const std::size_t sv = svm.n_support_vectors();
  EXPECT_EQ(svm.n_parameters(), sv * 3 + 1);           // d=2: (d+1)*sv + 1
  EXPECT_EQ(svm.prediction_ops(), sv * (3 * 2 + 2));   // 3d+2 per SV
}

TEST(SvmRbf, ValidatesInput) {
  EXPECT_THROW(SvmRbfClassifier(SvmRbfOptions{.C = 0.0}),
               std::invalid_argument);
  SvmRbfClassifier svm;
  Dataset one_class(2);
  one_class.append_row(std::vector<float>{1, 2}, 0, 0);
  one_class.append_row(std::vector<float>{3, 4}, 0, 0);
  EXPECT_THROW(svm.fit(one_class), std::invalid_argument);
  EXPECT_THROW(svm.predict_proba(std::vector<float>{1.0f, 2.0f}),
               std::logic_error);
}

TEST(SvmRbf, DeterministicForSeed) {
  const Dataset train = xor_blobs(300, 10);
  SvmRbfClassifier a, b;
  a.fit(train);
  b.fit(train);
  EXPECT_EQ(a.n_support_vectors(), b.n_support_vectors());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.decision_value(train.row(i)),
                     b.decision_value(train.row(i)));
  }
}

}  // namespace
}  // namespace drcshap
