#include "core/decision_tree.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Labels = x0 > 0.5 (one clean threshold).
Dataset threshold_data(std::size_t n = 400) {
  Dataset d(3);
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform());
    const float x1 = static_cast<float>(rng.uniform());  // noise
    const float x2 = static_cast<float>(rng.uniform());  // noise
    d.append_row(std::vector<float>{x0, x1, x2}, x0 > 0.5f ? 1 : 0, 0);
  }
  return d;
}

/// XOR of two binary features: needs depth >= 2.
Dataset xor_data(std::size_t n = 400) {
  Dataset d(2);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    const int a = rng.bernoulli(0.5);
    const int b = rng.bernoulli(0.5);
    d.append_row(std::vector<float>{static_cast<float>(a) + 0.01f * static_cast<float>(rng.normal()),
                                    static_cast<float>(b) + 0.01f * static_cast<float>(rng.normal())},
                 a ^ b, 0);
  }
  return d;
}

double dataset_accuracy(const DecisionTree& tree, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    const int predicted = tree.predict_proba(d.row(i)) >= 0.5 ? 1 : 0;
    if (predicted == d.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.n_rows());
}

// -------------------------------------------------------------- binning

TEST(BinnedMatrix, FewDistinctValuesGetOwnBins) {
  Dataset d(1);
  for (const float v : {1.0f, 2.0f, 2.0f, 5.0f}) {
    d.append_row(std::vector<float>{v}, 0, 0);
  }
  const BinnedMatrix binned(d, 64);
  EXPECT_EQ(binned.n_bins(0), 3);
  EXPECT_EQ(binned.bin(0, 0), 0);
  EXPECT_EQ(binned.bin(1, 0), 1);
  EXPECT_EQ(binned.bin(2, 0), 1);  // duplicate value, same bin
  EXPECT_EQ(binned.bin(3, 0), 2);
}

TEST(BinnedMatrix, SplitThresholdSeparatesBins) {
  Dataset d(1);
  for (const float v : {1.0f, 2.0f, 5.0f}) {
    d.append_row(std::vector<float>{v}, 0, 0);
  }
  const BinnedMatrix binned(d, 64);
  EXPECT_FLOAT_EQ(binned.split_threshold(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(binned.split_threshold(0, 1), 3.5f);
}

TEST(BinnedMatrix, ManyValuesRespectMaxBins) {
  Dataset d(1);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    d.append_row(std::vector<float>{static_cast<float>(rng.normal())}, 0, 0);
  }
  const BinnedMatrix binned(d, 16);
  EXPECT_LE(binned.n_bins(0), 16);
  EXPECT_GE(binned.n_bins(0), 8);
}

TEST(BinnedMatrix, BinsAreOrderedByValue) {
  Dataset d(1);
  Rng rng(4);
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<float>(rng.uniform(-5, 5)));
    d.append_row(std::vector<float>{values.back()}, 0, 0);
  }
  const BinnedMatrix binned(d, 32);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_LE(binned.bin(i, 0), binned.bin(j, 0));
      }
    }
    if (i > 50) break;  // enough pairs
  }
}

TEST(BinnedMatrix, ConstantFeatureSingleBin) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    d.append_row(std::vector<float>{7.0f}, 0, 0);
  }
  const BinnedMatrix binned(d, 64);
  EXPECT_EQ(binned.n_bins(0), 1);
}

TEST(BinnedMatrix, RejectsBadBinCount) {
  Dataset d = threshold_data(10);
  EXPECT_THROW(BinnedMatrix(d, 1), std::invalid_argument);
  EXPECT_THROW(BinnedMatrix(d, 257), std::invalid_argument);
}

// ----------------------------------------------------------------- tree

TEST(DecisionTree, LearnsSimpleThreshold) {
  const Dataset d = threshold_data();
  DecisionTree tree;
  tree.fit(d);
  EXPECT_GT(dataset_accuracy(tree, d), 0.97);
  // The root split should be on feature 0 near 0.5.
  EXPECT_EQ(tree.nodes()[0].feature, 0);
  EXPECT_NEAR(tree.nodes()[0].threshold, 0.5, 0.08);
}

TEST(DecisionTree, LearnsXor) {
  const Dataset d = xor_data();
  DecisionTree tree;
  tree.fit(d);
  EXPECT_GT(dataset_accuracy(tree, d), 0.99);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTree, UnprunedTreeIsPureOnTrain) {
  const Dataset d = xor_data(200);
  DecisionTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    const double p = tree.predict_proba(d.row(i));
    EXPECT_TRUE(p == 0.0 || p == 1.0) << p;
  }
}

TEST(DecisionTree, MaxDepthRespected) {
  const Dataset d = xor_data();
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree stump;
  stump.fit(d, options);
  EXPECT_LE(stump.depth(), 1);
  // XOR cannot be solved by a stump.
  EXPECT_LT(dataset_accuracy(stump, d), 0.75);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Dataset d = threshold_data(200);
  DecisionTreeOptions options;
  options.min_samples_leaf = 30;
  DecisionTree tree;
  tree.fit(d, options);
  for (const TreeNode& n : tree.nodes()) {
    if (n.feature < 0) EXPECT_GE(n.cover, 30.0);
  }
}

TEST(DecisionTree, CoverSumsAcrossChildren) {
  const Dataset d = threshold_data();
  DecisionTree tree;
  tree.fit(d);
  for (const TreeNode& n : tree.nodes()) {
    if (n.feature < 0) continue;
    const double child_total =
        tree.nodes()[static_cast<std::size_t>(n.left)].cover +
        tree.nodes()[static_cast<std::size_t>(n.right)].cover;
    EXPECT_NEAR(n.cover, child_total, 1e-9);
  }
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 400.0);
}

TEST(DecisionTree, ExpectedValueMatchesBaseRate) {
  const Dataset d = threshold_data();
  DecisionTree tree;
  tree.fit(d);
  const double base_rate =
      static_cast<double>(d.n_positives()) / static_cast<double>(d.n_rows());
  EXPECT_NEAR(tree.expected_value(), base_rate, 1e-9);
}

TEST(DecisionTree, DeterministicForSeed) {
  const Dataset d = xor_data();
  DecisionTreeOptions options;
  options.max_features = 1;
  options.seed = 5;
  DecisionTree a, b;
  a.fit(d, options);
  b.fit(d, options);
  ASSERT_EQ(a.n_nodes(), b.n_nodes());
  for (std::size_t i = 0; i < a.n_nodes(); ++i) {
    EXPECT_EQ(a.nodes()[i].feature, b.nodes()[i].feature);
    EXPECT_FLOAT_EQ(a.nodes()[i].threshold, b.nodes()[i].threshold);
  }
}

TEST(DecisionTree, ClassWeightShiftsLeafValues) {
  const Dataset d = threshold_data();
  DecisionTreeOptions weighted;
  weighted.positive_weight = 10.0;
  weighted.max_depth = 0;  // root only: leaf value = weighted base rate
  DecisionTree tree;
  tree.fit(d, weighted);
  const double base_rate =
      static_cast<double>(d.n_positives()) / static_cast<double>(d.n_rows());
  EXPECT_GT(tree.predict_proba(d.row(0)), base_rate);
}

TEST(DecisionTree, SingleClassDataYieldsLeafOnly) {
  Dataset d(2);
  for (int i = 0; i < 50; ++i) {
    d.append_row(std::vector<float>{static_cast<float>(i), 0.0f}, 0, 0);
  }
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.n_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_proba(d.row(0)), 0.0);
}

TEST(DecisionTree, PredictValidation) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict_proba(std::vector<float>{1.0f}),
               std::logic_error);
  const Dataset d = threshold_data(50);
  tree.fit(d);
  EXPECT_THROW(tree.predict_proba(std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(DecisionTree, FitOnBootstrapRows) {
  const Dataset d = threshold_data();
  const BinnedMatrix binned(d, 64);
  Rng rng(9);
  const auto rows = rng.bootstrap_indices(d.n_rows());
  DecisionTree tree;
  tree.fit_binned(binned, d, rows, {});
  EXPECT_GT(dataset_accuracy(tree, d), 0.9);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, static_cast<double>(rows.size()));
}

TEST(DecisionTree, MeanDepthBetweenZeroAndMax) {
  const Dataset d = xor_data();
  DecisionTree tree;
  tree.fit(d);
  EXPECT_GT(tree.mean_depth(), 0.0);
  EXPECT_LE(tree.mean_depth(), static_cast<double>(tree.depth()));
}

TEST(DecisionTree, LeafCountConsistent) {
  const Dataset d = threshold_data();
  DecisionTree tree;
  tree.fit(d);
  // Binary tree: leaves = internal nodes + 1.
  EXPECT_EQ(tree.n_leaves(), (tree.n_nodes() + 1) / 2);
}

}  // namespace
}  // namespace drcshap
