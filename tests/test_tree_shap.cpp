// Verification of the SHAP tree explainer against first principles:
//  * exact agreement with the exponential-time Shapley computation (Eq. (2)
//    of the paper) on trees/forests small enough to enumerate,
//  * the local-accuracy (additivity) axiom on full-size models,
//  * the dummy axiom (features the model never uses get exactly 0),
//  * hand-computed values on a crafted 1-split tree.

#include "core/tree_shap.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/brute_force_shap.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset random_data(std::size_t n, std::size_t n_features, std::uint64_t seed,
                    double noise = 0.0) {
  Dataset d(n_features);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(n_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    double score = 0.0;
    for (std::size_t f = 0; f < std::min<std::size_t>(3, n_features); ++f) {
      score += x[f];
    }
    if (n_features >= 2 && x[0] > 0.5 && x[1] > 0.5) score += 1.0;
    score += noise * rng.normal();
    d.append_row(x, score > 1.6 ? 1 : 0, 0);
  }
  return d;
}

double forest_prediction_gap(const RandomForestClassifier& forest,
                             std::span<const float> x) {
  const TreeShapExplainer explainer(forest);
  const auto phi = explainer.shap_values(x);
  const double total =
      std::accumulate(phi.begin(), phi.end(), explainer.base_value());
  return std::abs(total - forest.predict_proba(x));
}

TEST(TreeShap, HandComputedSingleSplit) {
  // Tree: x0 <= 0.5 -> 0.2 (cover 60), else 0.8 (cover 40).
  std::vector<TreeNode> nodes(3);
  nodes[0] = {0, 0.5f, 1, 2, 0.44, 100.0};
  nodes[1] = {-1, 0.0f, -1, -1, 0.2, 60.0};
  nodes[2] = {-1, 0.0f, -1, -1, 0.8, 40.0};
  DecisionTree tree;
  tree.set_nodes(nodes, 2);

  // For x0 > 0.5: phi_0 = f(x) - E[f] = 0.8 - (0.6*0.2 + 0.4*0.8).
  const std::vector<float> x{0.9f, 0.1f};
  const auto phi = TreeShapExplainer::tree_shap_values(tree, x);
  EXPECT_NEAR(phi[0], 0.8 - 0.44, 1e-12);
  EXPECT_NEAR(phi[1], 0.0, 1e-12);  // dummy feature

  const std::vector<float> x_low{0.1f, 0.9f};
  const auto phi_low = TreeShapExplainer::tree_shap_values(tree, x_low);
  EXPECT_NEAR(phi_low[0], 0.2 - 0.44, 1e-12);
}

TEST(TreeShap, HandComputedTwoFeatureInteraction) {
  // x0 <= 0.5 ? (x1 <= 0.5 ? 0 : 1) : (x1 <= 0.5 ? 1 : 0)  -- XOR shape,
  // uniform covers: E = 0.5, and by symmetry both features get equal credit.
  std::vector<TreeNode> nodes(7);
  nodes[0] = {0, 0.5f, 1, 2, 0.5, 100.0};
  nodes[1] = {1, 0.5f, 3, 4, 0.5, 50.0};
  nodes[2] = {1, 0.5f, 5, 6, 0.5, 50.0};
  nodes[3] = {-1, 0, -1, -1, 0.0, 25.0};
  nodes[4] = {-1, 0, -1, -1, 1.0, 25.0};
  nodes[5] = {-1, 0, -1, -1, 1.0, 25.0};
  nodes[6] = {-1, 0, -1, -1, 0.0, 25.0};
  DecisionTree tree;
  tree.set_nodes(nodes, 2);

  const std::vector<float> x{0.2f, 0.8f};  // f(x) = 1
  const auto phi = TreeShapExplainer::tree_shap_values(tree, x);
  EXPECT_NEAR(phi[0], 0.25, 1e-12);
  EXPECT_NEAR(phi[1], 0.25, 1e-12);
}

TEST(TreeShap, MatchesBruteForceOnSingleTrees) {
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    const Dataset d = random_data(300, 6, seed, 0.3);
    DecisionTreeOptions options;
    options.max_depth = 5;  // keeps distinct features small for brute force
    DecisionTree tree;
    tree.fit(d, options);
    Rng rng(seed + 100);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<float> x(6);
      for (auto& v : x) v = static_cast<float>(rng.uniform());
      const auto fast = TreeShapExplainer::tree_shap_values(tree, x);
      const auto slow = brute_force_shap_values(tree, x);
      for (std::size_t f = 0; f < 6; ++f) {
        EXPECT_NEAR(fast[f], slow[f], 1e-9)
            << "seed " << seed << " trial " << trial << " feature " << f;
      }
    }
  }
}

TEST(TreeShap, MatchesBruteForceOnDeepTreeWithRepeatedFeatures) {
  // Unpruned tree over 4 features: the same feature appears repeatedly on a
  // path, exercising the UNWIND logic.
  const Dataset d = random_data(500, 4, 77, 0.5);
  DecisionTree tree;
  tree.fit(d);
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const auto fast = TreeShapExplainer::tree_shap_values(tree, x);
    const auto slow = brute_force_shap_values(tree, x);
    for (std::size_t f = 0; f < 4; ++f) {
      EXPECT_NEAR(fast[f], slow[f], 1e-9) << "feature " << f;
    }
  }
}

TEST(TreeShap, MatchesBruteForceOnForest) {
  const Dataset d = random_data(400, 5, 41, 0.4);
  RandomForestOptions options;
  options.n_trees = 12;
  options.max_depth = 4;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const TreeShapExplainer explainer(forest);
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> x(5);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const auto fast = explainer.shap_values(x);
    const auto slow = brute_force_shap_values(forest, x);
    for (std::size_t f = 0; f < 5; ++f) {
      EXPECT_NEAR(fast[f], slow[f], 1e-9);
    }
  }
}

TEST(TreeShap, AdditivityOnFullSizeForest) {
  // Local accuracy: base + sum(phi) == prediction, on an unpruned forest
  // with many features (no brute force needed).
  const Dataset d = random_data(800, 25, 51, 0.4);
  RandomForestOptions options;
  options.n_trees = 40;
  RandomForestClassifier forest(options);
  forest.fit(d);
  Rng rng(52);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(25);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    EXPECT_LT(forest_prediction_gap(forest, x), 1e-9);
  }
}

TEST(TreeShap, DummyFeaturesGetExactlyZero) {
  // Only features 0 and 1 influence the label; 2..9 are noise that an
  // all-features split search will ignore given a clean signal.
  Dataset d(10);
  Rng rng(61);
  for (int i = 0; i < 500; ++i) {
    std::vector<float> x(10);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    // Make features 2..9 constant so no split can use them.
    for (std::size_t f = 2; f < 10; ++f) x[f] = 0.5f;
    d.append_row(x, (x[0] > 0.5f) != (x[1] > 0.5f) ? 1 : 0, 0);
  }
  DecisionTree tree;
  tree.fit(d);
  const std::vector<float> x{0.9f, 0.1f, 0.5f, 0.5f, 0.5f,
                             0.5f, 0.5f, 0.5f, 0.5f, 0.5f};
  const auto phi = TreeShapExplainer::tree_shap_values(tree, x);
  for (std::size_t f = 2; f < 10; ++f) {
    EXPECT_DOUBLE_EQ(phi[f], 0.0) << "feature " << f;
  }
  EXPECT_NE(phi[0], 0.0);
  EXPECT_NE(phi[1], 0.0);
}

TEST(TreeShap, BaseValueIsCoverWeightedMean) {
  const Dataset d = random_data(500, 5, 71, 0.3);
  RandomForestOptions options;
  options.n_trees = 15;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const TreeShapExplainer explainer(forest);
  EXPECT_NEAR(explainer.base_value(), forest.expected_value(), 1e-12);
}

TEST(TreeShap, SymmetryAxiomOnSymmetricTree) {
  // Two features used identically -> equal attribution for equal values.
  const Dataset d = random_data(400, 2, 81, 0.0);
  RandomForestOptions options;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const TreeShapExplainer explainer(forest);
  // Consistency through brute force is covered above; here check additivity
  // holds at several points including extremes.
  for (const float v : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
    const std::vector<float> x{v, v};
    EXPECT_LT(forest_prediction_gap(forest, x), 1e-9);
  }
}

TEST(BruteForceShap, ConditionalExpectationFollowsKnownFeatures) {
  std::vector<TreeNode> nodes(3);
  nodes[0] = {0, 0.5f, 1, 2, 0.44, 100.0};
  nodes[1] = {-1, 0, -1, -1, 0.2, 60.0};
  nodes[2] = {-1, 0, -1, -1, 0.8, 40.0};
  DecisionTree tree;
  tree.set_nodes(nodes, 1);
  const std::vector<float> x{0.9f};
  EXPECT_DOUBLE_EQ(conditional_expectation(tree, x, {true}), 0.8);
  EXPECT_DOUBLE_EQ(conditional_expectation(tree, x, {false}),
                   0.6 * 0.2 + 0.4 * 0.8);
}

TEST(BruteForceShap, RejectsTooManyFeatures) {
  const Dataset d = random_data(400, 6, 91, 0.5);
  DecisionTree tree;
  tree.fit(d);
  const std::vector<float> x(6, 0.5f);
  EXPECT_THROW(brute_force_shap_values(tree, x, 2), std::invalid_argument);
}

TEST(TreeShap, ValidatesInput) {
  DecisionTree unfitted;
  EXPECT_THROW(
      TreeShapExplainer::tree_shap_values(unfitted, std::vector<float>{1.0f}),
      std::logic_error);
  const Dataset d = random_data(100, 3, 95, 0.0);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_THROW(
      TreeShapExplainer::tree_shap_values(tree, std::vector<float>{1.0f}),
      std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
