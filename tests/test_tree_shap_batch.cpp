// The batched, thread-parallel explanation/inference engine:
//  * shap_values_batch agrees with the single-sample path per feature,
//  * results are bit-identical for any thread count (the reduction
//    structure is fixed by the ensemble, not the scheduler),
//  * local accuracy (base + sum(phi) == predict_proba) holds row-wise,
//  * RandomForestClassifier::predict_proba_all matches the per-row loop
//    exactly, for any thread count,
//  * explain_batch mirrors explain_sample.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset random_data(std::size_t n, std::size_t n_features, std::uint64_t seed,
                    double noise = 0.3) {
  Dataset d(n_features);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(n_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    double score = 0.0;
    for (std::size_t f = 0; f < std::min<std::size_t>(3, n_features); ++f) {
      score += x[f];
    }
    if (n_features >= 2 && x[0] > 0.5 && x[1] > 0.5) score += 1.0;
    score += noise * rng.normal();
    d.append_row(x, score > 1.6 ? 1 : 0, 0);
  }
  return d;
}

RandomForestClassifier fitted_forest(const Dataset& data, int n_trees,
                                     int max_depth = -1) {
  RandomForestOptions options;
  options.n_trees = n_trees;
  options.max_depth = max_depth;
  RandomForestClassifier forest(options);
  forest.fit(data);
  return forest;
}

TEST(TreeShapBatch, MatchesSingleSamplePathSmallEnsemble) {
  // 40 trees: exercises the single-block direct-accumulation path.
  const Dataset d = random_data(400, 12, 11);
  const RandomForestClassifier forest = fitted_forest(d, 40);
  const TreeShapExplainer explainer(forest);
  const ShapMatrix batch = explainer.shap_values_batch(d.subset([&] {
    std::vector<std::size_t> rows(30);
    std::iota(rows.begin(), rows.end(), 0);
    return rows;
  }()));
  ASSERT_EQ(batch.n_rows, 30u);
  ASSERT_EQ(batch.n_features, 12u);
  for (std::size_t r = 0; r < batch.n_rows; ++r) {
    const auto single = explainer.shap_values(d.row(r));
    const auto row = batch.row(r);
    for (std::size_t f = 0; f < batch.n_features; ++f) {
      EXPECT_NEAR(row[f], single[f], 1e-12) << "row " << r << " feature " << f;
    }
  }
}

TEST(TreeShapBatch, MatchesSingleSamplePathAcrossTreeBlocks) {
  // 130 trees: forces multiple tree blocks, so the partial-merge path runs.
  const Dataset d = random_data(300, 8, 13);
  const RandomForestClassifier forest = fitted_forest(d, 130, 6);
  const TreeShapExplainer explainer(forest);
  const ShapMatrix batch = explainer.shap_values_batch(d, 2);
  for (std::size_t r = 0; r < 25; ++r) {
    const auto single = explainer.shap_values(d.row(r));
    const auto row = batch.row(r);
    for (std::size_t f = 0; f < batch.n_features; ++f) {
      EXPECT_NEAR(row[f], single[f], 1e-12) << "row " << r << " feature " << f;
    }
  }
}

TEST(TreeShapBatch, BitIdenticalAcrossThreadCounts) {
  const Dataset d = random_data(200, 10, 17);
  const RandomForestClassifier forest = fitted_forest(d, 130, 7);
  const TreeShapExplainer explainer(forest);
  const ShapMatrix one = explainer.shap_values_batch(d, 1);
  const ShapMatrix two = explainer.shap_values_batch(d, 2);
  const ShapMatrix eight = explainer.shap_values_batch(d, 8);
  ASSERT_EQ(one.values.size(), two.values.size());
  ASSERT_EQ(one.values.size(), eight.values.size());
  for (std::size_t i = 0; i < one.values.size(); ++i) {
    // Exact equality by construction: the reduction shape is fixed.
    EXPECT_EQ(one.values[i], two.values[i]) << "element " << i;
    EXPECT_EQ(one.values[i], eight.values[i]) << "element " << i;
  }
}

TEST(TreeShapBatch, LocalAccuracyOnMultiTreeForest) {
  const Dataset d = random_data(500, 15, 19);
  const RandomForestClassifier forest = fitted_forest(d, 70);
  const TreeShapExplainer explainer(forest);
  const ShapMatrix batch = explainer.shap_values_batch(d, 4);
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    const auto row = batch.row(r);
    const double total =
        std::accumulate(row.begin(), row.end(), explainer.base_value());
    EXPECT_NEAR(total, forest.predict_proba(d.row(r)), 1e-9) << "row " << r;
  }
}

TEST(TreeShapBatch, SpanOverloadMatchesDatasetOverload) {
  const Dataset d = random_data(60, 6, 23);
  const RandomForestClassifier forest = fitted_forest(d, 20, 5);
  const TreeShapExplainer explainer(forest);
  const ShapMatrix from_dataset = explainer.shap_values_batch(d, 2);
  const ShapMatrix from_span = explainer.shap_values_batch(
      std::span<const float>(d.features_flat()), d.n_rows(), 2);
  ASSERT_EQ(from_dataset.values.size(), from_span.values.size());
  for (std::size_t i = 0; i < from_dataset.values.size(); ++i) {
    EXPECT_EQ(from_dataset.values[i], from_span.values[i]);
  }
}

TEST(TreeShapBatch, EmptyBatchAndValidation) {
  const Dataset d = random_data(80, 5, 29);
  const RandomForestClassifier forest = fitted_forest(d, 10, 4);
  const TreeShapExplainer explainer(forest);

  const ShapMatrix empty = explainer.shap_values_batch(
      std::span<const float>{}, 0, 2);
  EXPECT_EQ(empty.n_rows, 0u);
  EXPECT_TRUE(empty.values.empty());

  // Mis-shaped inputs throw.
  const std::vector<float> x(7, 0.5f);
  EXPECT_THROW(explainer.shap_values_batch(std::span<const float>(x), 1, 1),
               std::invalid_argument);
  EXPECT_THROW(explainer.shap_values_batch(random_data(10, 4, 31), 1),
               std::invalid_argument);
}

TEST(RandomForestBatch, PredictProbaAllMatchesPerRowExactly) {
  const Dataset d = random_data(300, 9, 37);
  const RandomForestClassifier forest = fitted_forest(d, 30);
  const std::vector<double> batch = forest.predict_proba_all(d);
  ASSERT_EQ(batch.size(), d.n_rows());
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    EXPECT_DOUBLE_EQ(batch[r], forest.predict_proba(d.row(r))) << "row " << r;
  }
}

TEST(RandomForestBatch, PredictProbaAllBitIdenticalAcrossThreadCounts) {
  const Dataset d = random_data(250, 7, 41);
  std::vector<std::vector<double>> results;
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    RandomForestOptions options;
    options.n_trees = 25;
    options.n_threads = n_threads;
    RandomForestClassifier forest(options);
    forest.fit(d);  // per-tree seeds make the model thread-count independent
    results.push_back(forest.predict_proba_all(d));
  }
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    EXPECT_EQ(results[0][r], results[1][r]) << "row " << r;
    EXPECT_EQ(results[0][r], results[2][r]) << "row " << r;
  }
}

TEST(ExplainBatch, MirrorsExplainSample) {
  const Dataset d = random_data(40, 8, 43);
  const RandomForestClassifier forest = fitted_forest(d, 15, 6);
  const TreeShapExplainer explainer(forest);
  const std::vector<Explanation> batch =
      explain_batch(explainer, forest, d, {}, 2);
  ASSERT_EQ(batch.size(), d.n_rows());
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    const Explanation single = explain_sample(explainer, forest, d.row(r), {});
    EXPECT_DOUBLE_EQ(batch[r].prediction(), single.prediction());
    ASSERT_EQ(batch[r].shap_values().size(), single.shap_values().size());
    for (std::size_t f = 0; f < single.shap_values().size(); ++f) {
      EXPECT_NEAR(batch[r].shap_values()[f], single.shap_values()[f], 1e-12);
    }
    EXPECT_LT(batch[r].additivity_gap(), 1e-9);
  }
}

}  // namespace
}  // namespace drcshap
