#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PassesIndices) {
  ThreadPool pool(2);
  std::vector<int> hit(50, 0);
  pool.parallel_for(50, [&](std::size_t i) { hit[i] = static_cast<int>(i); });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(hit[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] {});
  future.get();  // must not hang
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(
      50, [&](std::size_t i) { ++hits[i]; }, /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(2);
  std::vector<int> hit(10, 0);
  pool.parallel_for(
      10, [&](std::size_t i) { hit[i] = 1; }, /*grain=*/100);
  for (const int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(3);
  // The calling thread is not a pool worker.
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
  std::vector<std::atomic<int>> seen(200);
  pool.parallel_for(200, [&](std::size_t i) {
    seen[i] = ThreadPool::current_worker_index();
  });
  // 200 indices chunk into >1 tasks, so every index ran on a pool worker
  // whose id addresses a per-worker scratch slot.
  for (const auto& w : seen) {
    EXPECT_GE(w.load(), 0);
    EXPECT_LT(w.load(), 3);
  }
}

TEST(ThreadPool, ChunkedExceptionStillPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   1000, [&](std::size_t i) {
                     if (i == 777) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ThrowJoinsAllSiblingsBeforeRethrow) {
  // Regression: parallel_for used to rethrow from the first failed future
  // while sibling tasks were still running; they then touched the callback
  // and captured state after the caller's stack frame was gone (a
  // use-after-free TSan flags). Throw from a mid-range chunk and destroy
  // the captured vector immediately after: if any abandoned sibling were
  // still running it would write into freed memory.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    auto touched = std::make_unique<std::vector<std::atomic<int>>>(4096);
    try {
      pool.parallel_for(4096, [&](std::size_t i) {
        (*touched)[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 2048) throw std::runtime_error("mid-range boom");
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "mid-range boom");
    }
    touched.reset();  // any straggler task would now be a use-after-free
  }
}

TEST(ThreadPool, ThrowStopsUnclaimedChunks) {
  // The failure flag lets strips stop claiming work once a sibling threw:
  // every strip dies on its first index, so at most one index per strip
  // runs and the rest of the 100k-index range is never claimed.
  ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(
                   100000,
                   [&](std::size_t) {
                     ran.fetch_add(1, std::memory_order_relaxed);
                     throw std::runtime_error("first chunk dies");
                   }),
               std::runtime_error);
  EXPECT_LE(ran.load(), 2u);
}

// --------------------------------------------------------------------- Table

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // 5 rules: top, under header, separator, bottom... count '+' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4);
}

TEST(Formatting, FixedKiloPercent) {
  EXPECT_EQ(fmt_fixed(0.50584, 4), "0.5058");
  EXPECT_EQ(fmt_kilo(1252200.0, 1), "1252.2k");
  EXPECT_EQ(fmt_percent(0.506, 1), "50.6%");
}

// ----------------------------------------------------------------------- CSV

TEST(Csv, EscapeQuotesSpecialCells) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, ParseHandlesQuotedCommas) {
  const auto cells = csv_parse_line("a,\"b,c\",d");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1], "b,c");
}

TEST(Csv, ParseHandlesEscapedQuote) {
  const auto cells = csv_parse_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(Csv, RoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drcshap_csv_test.csv").string();
  {
    CsvWriter writer(path);
    writer.write_row({"name", "value,with,commas"});
    writer.write_row_doubles({1.5, -2.25});
  }
  const auto rows = csv_read_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "value,with,commas");
  EXPECT_DOUBLE_EQ(std::stod(rows[1][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), -2.25);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(csv_read_file("/nonexistent/definitely/not.csv"),
               std::runtime_error);
}

// ----------------------------------------------------------------- Stopwatch

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(sw.minutes() * 60.0, sw.seconds(), 0.1);
}

}  // namespace
}  // namespace drcshap
