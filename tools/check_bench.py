#!/usr/bin/env python3
"""Perf-regression gate: compare a bench run against the checked-in baseline.

Usage:
    tools/check_bench.py BENCH_shap.json runreport.json [--tolerance 0.25]

The baseline is google-benchmark JSON (the checked-in BENCH_shap.json). The
candidate is either:
  * a drcshap runreport.json (schema_version 1) whose gauges carry
    "bench/<name>/real_time_ms" and ".../cpu_time_ms" entries written by
    ObsRecordingReporter, or
  * raw google-benchmark JSON (--benchmark_out=... format),
so the gate works both on the observability pipeline and on plain benchmark
dumps.

Only benchmarks present in BOTH files are compared (CI runs a reduced
filter), but zero overlap is an error — a silently empty comparison must
not pass. A benchmark regresses when its time exceeds
baseline * (1 + tolerance); faster-than-baseline results only warn when
they are suspiciously fast (more than `tolerance` below baseline), since
that usually means the baseline is stale.

--require REGEX hardens a gate against silent shrinkage: every baseline
benchmark whose name matches the regex must be present in the candidate
report, otherwise the gate fails (exit 2) with a one-line diagnosis. CI
passes a --require matching each job's --benchmark_filter, so deleting or
renaming a gated benchmark can never slip through as "0 skipped, OK".

Exit status: 0 = pass, 1 = regression or no overlap, 2 = usage/IO error or
a --require'd benchmark missing from the candidate report.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


class ReportError(Exception):
    """A report file is unreadable, truncated, or malformed."""


def load_json_object(path: str) -> dict:
    """Parse `path` as a JSON object, failing with an actionable message.

    A truncated or half-written report (e.g. a run killed mid-benchmark
    before this repo grew atomic report commits) must produce a clear
    one-line diagnosis, not a traceback or a silently empty comparison.
    """
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        raise ReportError(f"check_bench: cannot read {path}: {err}")
    if not text.strip():
        raise ReportError(
            f"check_bench: {path} is empty — the producing run likely "
            "crashed before writing the report; re-run the benchmarks")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReportError(
            f"check_bench: {path} is not valid JSON (line {err.lineno}, "
            f"col {err.colno}: {err.msg}) — truncated or corrupt report; "
            "re-run the benchmarks")
    if not isinstance(doc, dict):
        raise ReportError(
            f"check_bench: {path} holds a JSON {type(doc).__name__}, "
            "expected an object (runreport or google-benchmark format)")
    return doc


def load_baseline(path: str, metric: str) -> dict[str, float]:
    """Google-benchmark JSON -> {benchmark name: time in ms}."""
    doc = load_json_object(path)
    out: dict[str, float] = {}
    benches = doc.get("benchmarks", [])
    if not isinstance(benches, list):
        raise ReportError(f"check_bench: {path}: 'benchmarks' is not a list")
    for bench in benches:
        if not isinstance(bench, dict):
            raise ReportError(f"check_bench: {path}: malformed benchmark row")
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        try:
            unit = bench.get("time_unit", "ns")
            out[bench["name"]] = bench[f"{metric}_time"] * TO_MS[unit]
        except (KeyError, TypeError) as err:
            raise ReportError(
                f"check_bench: {path}: benchmark row missing/invalid "
                f"field {err} — corrupt report")
    return out


def load_candidate(path: str, metric: str) -> dict[str, float]:
    """runreport.json or google-benchmark JSON -> {name: time in ms}."""
    doc = load_json_object(path)
    if "benchmarks" in doc:
        return load_baseline(path, metric)
    gauges = doc.get("gauges", {})
    if not isinstance(gauges, dict):
        raise ReportError(f"check_bench: {path}: 'gauges' is not an object")
    out: dict[str, float] = {}
    prefix, suffix = "bench/", f"/{metric}_time_ms"
    for key, value in gauges.items():
        if key.startswith(prefix) and key.endswith(suffix):
            try:
                out[key[len(prefix):-len(suffix)]] = float(value)
            except (TypeError, ValueError):
                raise ReportError(
                    f"check_bench: {path}: gauge '{key}' is not a number "
                    "— corrupt report")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in google-benchmark JSON")
    parser.add_argument("report", help="runreport.json or benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--metric", choices=["real", "cpu"], default="real",
                        help="which time to gate on; cpu is robust to "
                             "runner load but meaningless for UseRealTime "
                             "thread-pool benches (default real)")
    parser.add_argument("--require", metavar="REGEX", default=None,
                        help="baseline benchmarks matching REGEX must be "
                             "present in the report, else fail (exit 2)")
    args = parser.parse_args()
    try:
        required = re.compile(args.require) if args.require else None
    except re.error as err:
        print(f"check_bench: bad --require regex: {err}", file=sys.stderr)
        return 2

    try:
        baseline = load_baseline(args.baseline, args.metric)
        candidate = load_candidate(args.report, args.metric)
    except ReportError as err:
        print(str(err), file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"check_bench: cannot load inputs: {err}", file=sys.stderr)
        return 2

    if required is not None:
        missing = sorted(name for name in baseline
                         if required.search(name) and name not in candidate)
        if missing:
            print(f"check_bench: FAIL — {len(missing)} required baseline "
                  f"benchmark(s) missing from {args.report} (deleted, "
                  f"renamed, or filtered out?): {', '.join(missing)}",
                  file=sys.stderr)
            return 2

    common = sorted(set(baseline) & set(candidate))
    if not common:
        print("check_bench: FAIL — no benchmarks in common between "
              f"{args.baseline} ({len(baseline)} entries) and "
              f"{args.report} ({len(candidate)} entries)", file=sys.stderr)
        return 1

    width = max(len(name) for name in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name in common:
        base_ms, cur_ms = baseline[name], candidate[name]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - args.tolerance:
            verdict = "fast (stale baseline?)"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {base_ms:>10.3f}ms  {cur_ms:>10.3f}ms  "
              f"{ratio:>6.2f}x  {verdict}")

    skipped = len(baseline) - len(common)
    if skipped:
        print(f"note: {skipped} baseline benchmark(s) absent from the "
              "report (reduced run) — not compared")
    if regressions:
        print(f"check_bench: FAIL — {len(regressions)} regression(s) beyond "
              f"+{args.tolerance:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"check_bench: OK — {len(common)} benchmark(s) within "
          f"+{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
