// drcshap_serve: long-lived DRC-hotspot inference daemon.
//
//   drcshap_serve --model MODEL.forest --socket /run/drcshap.sock
//   drcshap_serve --model MODEL.forest --stdio
//   drcshap_serve --make-fixture MODEL.forest [--features N --rows N
//                 --trees N --seed S]
//
// Serves score/explain/reload/stats/shutdown/global-explain/eco over the
// length-prefixed binary protocol of src/serve/protocol.hpp. With
// --eco-design the daemon additionally holds a fully scored suite design
// resident and serves edit -> hotspot-diff round trips against it.
// SIGHUP hot-swaps the model
// (re-reads the artifact in place); SIGINT/SIGTERM drain and exit. A run
// report is written at exit ($DRCSHAP_RUNREPORT, with
// $DRCSHAP_RUNREPORT_PER_PROCESS=1 adding a .pid suffix so a co-located
// load generator can merge instead of clobber).
//
// --make-fixture trains a small synthetic forest and saves it through the
// artifact envelope — the fixture model the CI serve-smoke job (and local
// experiments) run the daemon against.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/random_forest.hpp"
#include "obs/run_report.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace {

drcshap::serve::Server* g_server = nullptr;

extern "C" void handle_sighup(int) {
  if (g_server != nullptr) g_server->notify_sighup();
}

extern "C" void handle_shutdown_signal(int) {
  if (g_server != nullptr) g_server->notify_shutdown_signal();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model PATH (--socket PATH | --stdio)\n"
      "          [--max-batch ROWS] [--flush-us US] [--threads N]\n"
      "          [--engine auto|exact|compiled] [--explain-cache on|off]\n"
      "          [--eco-design NAME] [--eco-scale S]\n"
      "       %s --make-fixture PATH [--features N] [--rows N] [--trees N]\n"
      "          [--seed S]\n"
      "\n"
      "verbs (length-prefixed binary protocol, src/serve/protocol.hpp):\n"
      "  score           probabilities for a float32 feature matrix\n"
      "  explain         per-row SHAP values + base value\n"
      "  reload          hot-swap the model artifact (also: SIGHUP)\n"
      "  stats           JSON snapshot: model/queue/batch/cache/latency/eco\n"
      "  shutdown        drain in-flight work, then exit\n"
      "  global-explain  streaming per-feature SHAP aggregates (O(features)\n"
      "                  reply regardless of row count)\n"
      "  eco             apply one edit (move/resize/reroute) to the\n"
      "                  resident --eco-design and reply with the re-route\n"
      "                  stats and before/after hotspot diff as JSON\n"
      "\n"
      "flags:\n"
      "  --model PATH        forest artifact to serve\n"
      "  --socket PATH       Unix stream socket (daemon mode)\n"
      "  --stdio             serve one connection on stdin/stdout\n"
      "  --max-batch ROWS    batcher row cap per dispatched batch\n"
      "  --flush-us US       batcher flush window in microseconds\n"
      "  --threads N         worker threads per batch (0 = whole pool)\n"
      "  --engine E          forest engine: auto|exact|compiled\n"
      "  --explain-cache M   on|off; exports DRCSHAP_EXPLAIN_CACHE\n"
      "  --eco-design NAME   benchmark-suite design to hold resident for\n"
      "                      the eco verb (requires a pipeline-schema model)\n"
      "  --eco-scale S       generator scale for the resident design\n"
      "                      (default 16; 1 = full size)\n"
      "\n"
      "environment kill switches (read per call unless noted):\n"
      "  DRCSHAP_EXPLAIN_CACHE=0   disable the explanation cache\n"
      "  DRCSHAP_SHAP_FAST=0       disable the batched TreeSHAP fast path\n"
      "  DRCSHAP_SIMD=0            disable AVX2 kernels (scalar fallback)\n"
      "  DRCSHAP_FOREST_ENGINE=exact|compiled  override engine resolution\n"
      "  DRCSHAP_THREADS=N         cap the shared thread pool (at startup)\n"
      "  DRCSHAP_RUNREPORT=PATH    write the exit run report here\n"
      "  DRCSHAP_RUNREPORT_PER_PROCESS=1  suffix the report with .pid\n",
      argv0, argv0);
  return 2;
}

struct FixtureOptions {
  std::string path;
  std::size_t n_features = 32;
  std::size_t n_rows = 2000;
  int n_trees = 50;
  std::uint64_t seed = 7;
};

/// Trains a small forest on a synthetic hotspot-like rule and commits it
/// through the artifact envelope, printing the path for scripts.
int make_fixture(const FixtureOptions& options) {
  drcshap::Dataset data(options.n_features);
  drcshap::Rng rng(options.seed);
  std::vector<float> row(options.n_features);
  for (std::size_t i = 0; i < options.n_rows; ++i) {
    for (float& value : row) value = static_cast<float>(rng.uniform());
    // Hotspot when local congestion is high and pin slack is low, with a
    // sprinkle of noise — separable enough that the fixture predicts
    // non-trivial probabilities.
    const bool hot =
        row[0] > 0.6f && row[1] < 0.5f && (row[2] + row[3]) > 0.7f;
    const bool flip = rng.uniform() < 0.05;
    data.append_row(row, (hot != flip) ? 1 : 0, 0);
  }
  drcshap::RandomForestOptions forest_options;
  forest_options.n_trees = options.n_trees;
  forest_options.seed = options.seed;
  drcshap::RandomForestClassifier forest(forest_options);
  forest.fit(data);
  drcshap::save_forest_file(forest, options.path);
  std::printf("%s\n", options.path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  drcshap::serve::ServerOptions options;
  FixtureOptions fixture;
  bool stdio = false;
  bool fixture_mode = false;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") {
      options.model_path = next_arg(i);
    } else if (arg == "--socket") {
      options.socket_path = next_arg(i);
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--max-batch") {
      options.batch.max_batch_rows =
          static_cast<std::size_t>(std::strtoull(next_arg(i), nullptr, 10));
    } else if (arg == "--flush-us") {
      options.batch.flush_us =
          static_cast<std::uint32_t>(std::strtoul(next_arg(i), nullptr, 10));
    } else if (arg == "--threads") {
      options.batch.n_threads =
          static_cast<std::size_t>(std::strtoull(next_arg(i), nullptr, 10));
    } else if (arg == "--engine") {
      const std::string name = next_arg(i);
      if (name == "auto") {
        options.batch.engine = drcshap::ForestEngine::kAuto;
      } else if (name == "exact") {
        options.batch.engine = drcshap::ForestEngine::kExact;
      } else if (name == "compiled") {
        options.batch.engine = drcshap::ForestEngine::kCompiled;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--explain-cache") {
      // Flag form of $DRCSHAP_EXPLAIN_CACHE: the explainer re-reads the
      // variable per call, so exporting it here is the single source of
      // truth for every batch this daemon serves.
      const std::string name = next_arg(i);
      if (name == "on") {
        ::setenv("DRCSHAP_EXPLAIN_CACHE", "1", 1);
      } else if (name == "off") {
        ::setenv("DRCSHAP_EXPLAIN_CACHE", "0", 1);
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--eco-design") {
      options.eco_design = next_arg(i);
    } else if (arg == "--eco-scale") {
      options.eco_scale = std::strtod(next_arg(i), nullptr);
    } else if (arg == "--make-fixture") {
      fixture_mode = true;
      fixture.path = next_arg(i);
    } else if (arg == "--features") {
      fixture.n_features =
          static_cast<std::size_t>(std::strtoull(next_arg(i), nullptr, 10));
    } else if (arg == "--rows") {
      fixture.n_rows =
          static_cast<std::size_t>(std::strtoull(next_arg(i), nullptr, 10));
    } else if (arg == "--trees") {
      fixture.n_trees = std::atoi(next_arg(i));
    } else if (arg == "--seed") {
      fixture.seed = std::strtoull(next_arg(i), nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  if (fixture_mode) {
    try {
      return make_fixture(fixture);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: make-fixture failed: %s\n", argv[0], e.what());
      return 1;
    }
  }

  if (options.model_path.empty() || (options.socket_path.empty() && !stdio)) {
    return usage(argv[0]);
  }

  drcshap::serve::Server server(options);
  const drcshap::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s: start failed: %s\n", argv[0],
                 started.to_string().c_str());
    return 1;
  }
  g_server = &server;
  if (!options.socket_path.empty()) {
    // Socket mode runs unattended: wire up hot swap and graceful drain.
    // (stdio mode keeps default signal dispositions so a terminal ^C
    // behaves normally.)
    std::signal(SIGHUP, handle_sighup);
    std::signal(SIGINT, handle_shutdown_signal);
    std::signal(SIGTERM, handle_shutdown_signal);
    std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
    std::fprintf(stderr, "drcshap_serve: listening on %s (model %s)\n",
                 options.socket_path.c_str(), options.model_path.c_str());
  }
  server.run();
  g_server = nullptr;

  drcshap::obs::RunReportOptions report;
  report.tool = "drcshap_serve";
  report.extra["model"] = options.model_path;
  const std::string written = drcshap::obs::write_default_run_report(report);
  if (!written.empty()) {
    std::fprintf(stderr, "drcshap_serve: run report written to %s\n",
                 written.c_str());
  }
  return 0;
}
