#!/usr/bin/env python3
"""Self-tests for tools/check_bench.py — the CI perf gate.

Every perf and serving job trusts check_bench.py's exit-code contract:
0 = pass, 1 = regression or zero overlap, 2 = malformed report or a
--require'd benchmark missing. These tests pin that contract (and the
diagnosis text for the exit-2 paths) by invoking the script the way CI
does: as a subprocess on real files. Stdlib unittest only, so the suite
runs anywhere python3 exists:

    python3 tools/test_check_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_bench.py")


def benchmark_json(times_ms, aggregates=()):
    """Google-benchmark JSON with per-iteration rows (times in ms)."""
    rows = [{"name": name, "run_type": "iteration", "real_time": ms,
             "cpu_time": ms, "time_unit": "ms"}
            for name, ms in times_ms.items()]
    rows += [{"name": name, "run_type": "aggregate", "real_time": 1e9,
              "cpu_time": 1e9, "time_unit": "ms"} for name in aggregates]
    return {"benchmarks": rows}


def runreport_json(times_ms, metric="real"):
    """drcshap runreport.json carrying bench gauges (times in ms)."""
    gauges = {f"bench/{name}/{metric}_time_ms": ms
              for name, ms in times_ms.items()}
    return {"schema_version": 1, "tool": "test", "gauges": gauges}


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="check_bench_test_")
        self.addCleanup(self.dir.cleanup)

    def write(self, name, content):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content if isinstance(content, str)
                    else json.dumps(content))
        return path

    def run_gate(self, baseline, report, *extra):
        return subprocess.run(
            [sys.executable, CHECK_BENCH, baseline, report, *extra],
            capture_output=True, text=True)

    # ------------------------------------------------------- exit 0 paths

    def test_within_tolerance_passes(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", runreport_json({"bm_a": 11.0}))
        result = self.run_gate(baseline, report, "--tolerance", "0.25")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_benchmark_json_candidate_accepted(self):
        # The candidate may be a raw --benchmark_out dump, not a runreport.
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", benchmark_json({"bm_a": 10.0}))
        self.assertEqual(self.run_gate(baseline, report).returncode, 0)

    def test_aggregate_rows_ignored(self):
        # mean/median/stddev rows must not be gated (their huge times here
        # would otherwise read as regressions).
        baseline = self.write("base.json", benchmark_json(
            {"bm_a": 10.0}, aggregates=["bm_a_mean"]))
        report = self.write("report.json", runreport_json({"bm_a": 10.0}))
        result = self.run_gate(baseline, report,
                               "--require", "bm_a")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_gates_on_selected_metric(self):
        # cpu gauges only; --metric cpu finds them, --metric real has no
        # overlap and must fail rather than silently pass.
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json",
                            runreport_json({"bm_a": 10.0}, metric="cpu"))
        self.assertEqual(
            self.run_gate(baseline, report, "--metric", "cpu").returncode, 0)
        self.assertEqual(
            self.run_gate(baseline, report, "--metric", "real").returncode, 1)

    # ------------------------------------------------------- exit 1 paths

    def test_regression_fails(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", runreport_json({"bm_a": 13.0}))
        result = self.run_gate(baseline, report, "--tolerance", "0.25")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_zero_overlap_fails(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", runreport_json({"bm_b": 10.0}))
        result = self.run_gate(baseline, report)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no benchmarks in common", result.stderr)

    # ------------------------------------------------------- exit 2 paths

    def test_empty_report_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", "")
        result = self.run_gate(baseline, report)
        self.assertEqual(result.returncode, 2)
        self.assertIn("empty", result.stderr)

    def test_truncated_json_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", '{"gauges": {"bench/bm_a')
        result = self.run_gate(baseline, report)
        self.assertEqual(result.returncode, 2)
        self.assertIn("not valid JSON", result.stderr)

    def test_non_object_json_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", "[1, 2, 3]")
        result = self.run_gate(baseline, report)
        self.assertEqual(result.returncode, 2)
        self.assertIn("expected an object", result.stderr)

    def test_non_numeric_gauge_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", {
            "gauges": {"bench/bm_a/real_time_ms": "fast"}})
        result = self.run_gate(baseline, report)
        self.assertEqual(result.returncode, 2)
        self.assertIn("not a number", result.stderr)

    def test_missing_file_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        result = self.run_gate(baseline,
                               os.path.join(self.dir.name, "absent.json"))
        self.assertEqual(result.returncode, 2)
        self.assertIn("cannot read", result.stderr)

    def test_required_benchmark_missing_fails(self):
        # The anti-shrinkage contract: a gated benchmark disappearing from
        # the candidate (deleted, renamed, filtered out) is exit 2, even
        # though the remaining overlap would pass.
        baseline = self.write("base.json",
                              benchmark_json({"bm_a": 10.0, "bm_b": 5.0}))
        report = self.write("report.json", runreport_json({"bm_a": 10.0}))
        result = self.run_gate(baseline, report, "--require", "bm_")
        self.assertEqual(result.returncode, 2)
        self.assertIn("bm_b", result.stderr)
        # The same files pass when --require only names what is present.
        self.assertEqual(
            self.run_gate(baseline, report, "--require", "bm_a").returncode,
            0)

    def test_bad_require_regex_diagnosed(self):
        baseline = self.write("base.json", benchmark_json({"bm_a": 10.0}))
        report = self.write("report.json", runreport_json({"bm_a": 10.0}))
        result = self.run_gate(baseline, report, "--require", "bm_(")
        self.assertEqual(result.returncode, 2)
        self.assertIn("bad --require regex", result.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
